"""Fault injection, checkpoint integrity, and serving fault tolerance.

Chaos discipline: every fault here is injected deterministically by the
seeded :class:`~repro.reliability.FaultInjector` (seed taken from
``REPRO_FAULT_SEED``, default 0 — CI runs a small seed matrix), so failures
reproduce exactly.  The load-bearing property, inherited from the
differential-test discipline of the rest of the suite, is that *faults must
not change answers*: a retried job completes with the bit-identical result
of a fault-free run.
"""

from __future__ import annotations

import dataclasses
import json
import os
import threading
import time
import warnings
import zipfile

import numpy as np
import pytest

from repro.core.config import Instant3DConfig
from repro.core.model import DecoupledRadianceField
from repro.datasets import make_synthetic_scene
from repro.datasets.dataset import build_dataset
from repro.io import (
    CheckpointCorruptError,
    CheckpointError,
    generation_path,
    io_stats,
    load_checkpoint,
    save_checkpoint,
)
from repro.reliability import (
    FaultInjector,
    PermanentFault,
    RetryPolicy,
    TransientFault,
    fault_injection,
    fault_point,
    get_injector,
    install_injector,
    uninstall_injector,
)
from repro.serving import (
    DeadlineExceeded,
    JobCancelled,
    JobPoisoned,
    QueueFull,
    ResidencyManager,
    SceneService,
)
from repro.training.trainer import Trainer, TrainingHistory

FAULT_SEED = int(os.environ.get("REPRO_FAULT_SEED", "0"))

#: Fast backoff so retry tests do not sleep for real.
FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base_s=0.005,
                         backoff_max_s=0.05)


def _make_dataset(name, image_size=8, n_train=2, n_test=1):
    return build_dataset(make_synthetic_scene(name), n_train_views=n_train,
                         n_test_views=n_test, image_size=image_size,
                         seed=0, suite="nerf_synthetic", gt_samples=16)


@pytest.fixture(scope="module")
def rel_datasets():
    return [_make_dataset(name) for name in ("lego", "chair")]


@pytest.fixture(scope="module")
def rel_config(tiny_config):
    return dataclasses.replace(tiny_config, culling_enabled=True,
                               occupancy_warmup_iterations=4,
                               occupancy_update_every=2)


@pytest.fixture(autouse=True)
def _no_leaked_injector():
    """Every test must leave the process-global injector uninstalled."""
    assert get_injector() is None
    yield
    assert get_injector() is None


class TestFaultInjector:
    def test_fault_point_is_noop_when_disabled(self, tmp_path):
        # No injector installed: must not raise, must not touch files.
        probe = tmp_path / "probe.bin"
        probe.write_bytes(b"x" * 64)
        fault_point("checkpoint.save", probe)
        assert probe.read_bytes() == b"x" * 64

    def test_raise_kinds_and_counters(self):
        injector = FaultInjector(seed=FAULT_SEED)
        injector.add("worker.execute", "raise-transient", times=1)
        injector.add("residency.checkout", "raise-permanent", times=1)
        with fault_injection(injector):
            with pytest.raises(TransientFault):
                fault_point("worker.execute")
            fault_point("worker.execute")      # times=1 exhausted: no-op
            with pytest.raises(PermanentFault):
                fault_point("residency.checkout")
        counts = injector.counts()
        assert counts["total"] == 2
        assert counts["worker.execute"] == 1
        assert counts["residency.checkout"] == 1

    def test_transient_fault_is_an_oserror(self):
        # RetryPolicy (and generic I/O handling) keys off OSError.
        assert issubclass(TransientFault, OSError)

    def test_after_skips_early_calls(self):
        injector = FaultInjector(seed=FAULT_SEED)
        spec = injector.add("worker.execute", "raise-transient",
                            after=2, times=1)
        with fault_injection(injector):
            fault_point("worker.execute")
            fault_point("worker.execute")
            with pytest.raises(TransientFault):
                fault_point("worker.execute")
        assert spec.calls == 3 and spec.triggered == 1

    def test_rate_schedule_is_deterministic_in_the_seed(self):
        def schedule(seed):
            injector = FaultInjector(seed=seed)
            spec = injector.add("checkpoint.load", "raise-transient", rate=0.5)
            fired = []
            with fault_injection(injector):
                for _ in range(64):
                    try:
                        fault_point("checkpoint.load")
                        fired.append(False)
                    except TransientFault:
                        fired.append(True)
            assert spec.calls == 64
            return fired

        first = schedule(FAULT_SEED)
        assert schedule(FAULT_SEED) == first
        assert any(first) and not all(first)   # rate=0.5 actually samples

    def test_delay_kind_sleeps(self):
        injector = FaultInjector(seed=FAULT_SEED)
        injector.add("worker.execute", "delay", delay_s=0.05, times=1)
        with fault_injection(injector):
            start = time.perf_counter()
            fault_point("worker.execute")
            assert time.perf_counter() - start >= 0.05

    def test_truncate_and_corrupt_mutate_the_file(self, tmp_path):
        target = tmp_path / "data.bin"
        payload = bytes(range(256)) * 4
        target.write_bytes(payload)
        injector = FaultInjector(seed=FAULT_SEED)
        injector.add("checkpoint.save", "truncate-file", times=1)
        with fault_injection(injector):
            fault_point("checkpoint.save", target)
        assert target.stat().st_size == len(payload) // 2

        target.write_bytes(payload)
        injector = FaultInjector(seed=FAULT_SEED)
        injector.add("checkpoint.save", "corrupt-bytes", times=1)
        with fault_injection(injector):
            fault_point("checkpoint.save", target)
        mutated = target.read_bytes()
        assert len(mutated) == len(payload) and mutated != payload

    def test_install_is_exclusive_and_context_managed(self):
        injector = FaultInjector(seed=FAULT_SEED)
        with fault_injection(injector):
            assert get_injector() is injector
            with pytest.raises(RuntimeError, match="already installed"):
                install_injector(FaultInjector(seed=1))
        assert get_injector() is None
        uninstall_injector()                   # idempotent

    def test_unknown_kind_and_bad_rate_rejected(self):
        injector = FaultInjector(seed=FAULT_SEED)
        with pytest.raises(ValueError, match="unknown fault kind"):
            injector.add("x", "raise-sometimes")
        with pytest.raises(ValueError, match="rate"):
            injector.add("x", rate=1.5)


class TestRetryPolicy:
    def test_classification(self):
        policy = RetryPolicy()
        assert policy.classify(TransientFault("io")) == "transient"
        assert policy.classify(OSError("eio")) == "transient"
        assert policy.classify(TimeoutError()) == "transient"
        assert policy.classify(PermanentFault("bad")) == "permanent"
        assert policy.classify(ValueError("bad arg")) == "permanent"
        assert policy.classify(CheckpointCorruptError("crc")) == "permanent"

    def test_backoff_is_deterministic_exponential_and_capped(self):
        policy = RetryPolicy(backoff_base_s=0.01, backoff_factor=2.0,
                             backoff_max_s=0.05)
        assert policy.backoff_s(1) == pytest.approx(0.01)
        assert policy.backoff_s(2) == pytest.approx(0.02)
        assert policy.backoff_s(3) == pytest.approx(0.04)
        assert policy.backoff_s(4) == pytest.approx(0.05)   # capped
        assert policy.backoff_s(10) == pytest.approx(0.05)

    def test_should_retry_counts_attempts(self):
        policy = RetryPolicy(max_attempts=2)
        error = TransientFault("io")
        assert policy.should_retry(error, 1)
        assert not policy.should_retry(error, 2)
        assert not policy.should_retry(PermanentFault("bad"), 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)


class TestCheckpointIntegrity:
    def _payload(self):
        return {"weights": np.arange(12.0).reshape(3, 4),
                "steps": 7,
                "moments": {"m": np.full(5, 0.25, dtype=np.float32)}}

    def test_digests_recorded_and_roundtrip(self, tmp_path):
        path = save_checkpoint(tmp_path / "s.npz", self._payload(), kind="t")
        with np.load(path, allow_pickle=False) as data:
            manifest = json.loads(str(data["__manifest__"][()]))
        assert set(manifest["digests"]) == {"a0", "a1"}
        loaded = load_checkpoint(path, expected_kind="t")
        assert loaded.fallback_generation == 0
        np.testing.assert_array_equal(loaded.payload["weights"],
                                      self._payload()["weights"])
        np.testing.assert_array_equal(loaded.payload["moments"]["m"],
                                      self._payload()["moments"]["m"])

    def test_digest_mismatch_raises_corrupt_error(self, tmp_path):
        path = save_checkpoint(tmp_path / "s.npz", self._payload(), kind="t")
        # Rewrite the archive with one array silently altered but the old
        # digests kept — the zip itself stays valid, only CRC32 can tell.
        with np.load(path, allow_pickle=False) as data:
            members = {key: data[key] for key in data.files}
        members["a0"] = np.asarray(members["a0"]) + 1.0
        np.savez(path, **members)
        with pytest.raises(CheckpointCorruptError, match="CRC32 mismatch"):
            load_checkpoint(path, expected_kind="t")
        assert path.exists()                   # no generations: no quarantine

    def test_truncated_file_without_generations_raises_in_place(self, tmp_path):
        path = save_checkpoint(tmp_path / "s.npz", self._payload(), kind="t")
        with open(path, "r+b") as handle:
            handle.truncate(path.stat().st_size // 2)
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(path)
        assert path.exists() and not list(tmp_path.glob("*.corrupt*"))

    def test_generation_fallback_quarantines_and_restores(self, tmp_path):
        path = tmp_path / "s.npz"
        save_checkpoint(path, {"x": np.arange(4.0), "v": 1}, kind="t",
                        keep_generations=3)
        save_checkpoint(path, {"x": np.arange(4.0) * 2, "v": 2}, kind="t",
                        keep_generations=3)
        assert generation_path(path, 1).exists()
        before = io_stats()
        with open(path, "r+b") as handle:      # torn write of the primary
            handle.truncate(path.stat().st_size // 2)
        loaded = load_checkpoint(path, expected_kind="t")
        assert loaded.fallback_generation == 1
        assert loaded.payload["v"] == 1
        np.testing.assert_array_equal(loaded.payload["x"], np.arange(4.0))
        assert (tmp_path / "s.npz.corrupt").exists()
        after = io_stats()
        assert after.fallback_loads == before.fallback_loads + 1
        assert after.quarantined_files == before.quarantined_files + 1

    def test_missing_primary_falls_back_to_generation(self, tmp_path):
        # Models a crash between the rotation and the final replace.
        path = tmp_path / "s.npz"
        save_checkpoint(path, {"v": 1}, kind="t", keep_generations=2)
        save_checkpoint(path, {"v": 2}, kind="t", keep_generations=2)
        path.unlink()
        loaded = load_checkpoint(path, expected_kind="t")
        assert loaded.payload["v"] == 1 and loaded.fallback_generation == 1

    def test_all_generations_corrupt_raises(self, tmp_path):
        path = tmp_path / "s.npz"
        save_checkpoint(path, {"v": 1}, kind="t", keep_generations=2)
        save_checkpoint(path, {"v": 2}, kind="t", keep_generations=2)
        for target in (path, generation_path(path, 1)):
            with open(target, "r+b") as handle:
                handle.truncate(8)
        with pytest.raises(CheckpointCorruptError, match="none of its"):
            load_checkpoint(path)

    def test_structural_errors_do_not_trigger_fallback(self, tmp_path):
        path = tmp_path / "s.npz"
        save_checkpoint(path, {"v": 1}, kind="alpha", keep_generations=2)
        save_checkpoint(path, {"v": 2}, kind="alpha", keep_generations=2)
        with pytest.raises(CheckpointError, match="holds a 'alpha'"):
            load_checkpoint(path, expected_kind="beta")
        assert not list(tmp_path.glob("*.corrupt*"))

    def test_rotation_keeps_exactly_n_generations(self, tmp_path):
        path = tmp_path / "s.npz"
        for v in range(6):
            save_checkpoint(path, {"v": v}, kind="t", keep_generations=3)
        assert load_checkpoint(path).payload["v"] == 5
        assert load_checkpoint(generation_path(path, 1),
                               fallback_generations=False).payload["v"] == 4
        assert load_checkpoint(generation_path(path, 2),
                               fallback_generations=False).payload["v"] == 3
        assert not generation_path(path, 3).exists()

    def test_legacy_digestless_checkpoint_loads_with_warning(self, tmp_path):
        path = save_checkpoint(tmp_path / "s.npz", self._payload(), kind="t")
        with np.load(path, allow_pickle=False) as data:
            members = {key: data[key] for key in data.files}
        manifest = json.loads(str(members["__manifest__"][()]))
        del manifest["digests"]                # simulate a pre-digest file
        members["__manifest__"] = np.array(json.dumps(manifest))
        np.savez(path, **members)
        before = io_stats().legacy_digestless_loads
        with pytest.warns(UserWarning, match="predates per-array"):
            loaded = load_checkpoint(path, expected_kind="t")
        assert io_stats().legacy_digestless_loads == before + 1
        np.testing.assert_array_equal(loaded.payload["weights"],
                                      self._payload()["weights"])

    def test_concurrent_same_path_saves_do_not_collide(self, tmp_path):
        # Satellite regression: the temp name used to be pid-only, so two
        # threads saving one scene raced on the same temp file.
        path = tmp_path / "shared.npz"
        errors = []

        def hammer(value):
            try:
                for _ in range(10):
                    save_checkpoint(path, {"v": value,
                                           "x": np.full(64, value, float)},
                                    kind="t")
            except BaseException as exc:  # noqa: BLE001 - collected
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(i,))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        loaded = load_checkpoint(path, expected_kind="t")   # valid + verified
        assert float(loaded.payload["x"][0]) == loaded.payload["v"]
        assert not list(tmp_path.glob(".*tmp*"))            # no temp litter


class TestServiceRetries:
    def test_transient_execute_fault_retries_bit_exactly(self, rel_datasets,
                                                         rel_config):
        dataset = rel_datasets[0]
        reference = Trainer(DecoupledRadianceField(rel_config, seed=0),
                            dataset, config=rel_config, seed=0)
        history = TrainingHistory()
        reference.run_steps(6, history)

        injector = FaultInjector(seed=FAULT_SEED)
        injector.add("worker.execute", "raise-transient", times=1)
        with fault_injection(injector):
            with SceneService([dataset], rel_config, seed=0, n_workers=1,
                              retry_policy=FAST_RETRY) as service:
                first = service.train(dataset.name, n_steps=3)
                second = service.train(dataset.name, n_steps=3)
                losses = first.result(60).losses + second.result(60).losses
                stats = service.stats()
        assert stats["retries"] == 1
        assert stats["faults_injected"] == 1
        assert losses == list(history.losses)

    def test_transient_fault_exhaustion_poisons_the_job(self, rel_datasets,
                                                        rel_config):
        injector = FaultInjector(seed=FAULT_SEED)
        # Exactly max_attempts firings: every attempt of the first job
        # fails, and the probe render afterwards runs clean.
        injector.add("worker.execute", "raise-transient",
                     times=FAST_RETRY.max_attempts)
        with fault_injection(injector):
            with SceneService(rel_datasets[:1], rel_config, seed=0,
                              n_workers=1,
                              retry_policy=FAST_RETRY) as service:
                handle = service.train(rel_datasets[0].name, n_steps=1)
                with pytest.raises(JobPoisoned) as err:
                    handle.result(60)
                assert isinstance(err.value.__cause__, TransientFault)
                assert service.stats()["poisoned"] == 1
                # The service is still healthy afterwards.
                service.render(rel_datasets[0].name).result(60)

    def test_permanent_fault_fails_immediately(self, rel_datasets, rel_config):
        injector = FaultInjector(seed=FAULT_SEED)
        injector.add("worker.execute", "raise-permanent", times=1)
        with fault_injection(injector):
            with SceneService(rel_datasets[:1], rel_config, seed=0,
                              n_workers=1,
                              retry_policy=FAST_RETRY) as service:
                handle = service.train(rel_datasets[0].name, n_steps=1)
                with pytest.raises(PermanentFault):
                    handle.result(60)
                assert service.stats()["retries"] == 0

    def test_checkout_fault_retries_through_residency(self, rel_datasets,
                                                      rel_config, tmp_path):
        injector = FaultInjector(seed=FAULT_SEED)
        injector.add("residency.checkout", "raise-transient", times=1)
        with fault_injection(injector):
            with SceneService(rel_datasets, rel_config, seed=0, n_workers=1,
                              checkpoint_dir=tmp_path / "ckpts",
                              max_resident_scenes=1,
                              retry_policy=FAST_RETRY) as service:
                results = [service.train(ds.name, n_steps=2).result(60)
                           for ds in rel_datasets]
                stats = service.stats()
        assert stats["retries"] == 1
        assert [r.iteration for r in results] == [2, 2]

    def test_coalesced_batch_mates_requeue_individually(self, rel_datasets,
                                                        rel_config):
        dataset = rel_datasets[0]
        other = rel_datasets[1]
        injector = FaultInjector(seed=FAULT_SEED)
        # after=1 skips the blocker train's execute; the coalesced render
        # batch that formed behind it takes the (single) fault.
        injector.add("worker.execute", "raise-transient", after=1, times=1)
        with fault_injection(injector):
            with SceneService(rel_datasets, rel_config, seed=0, n_workers=1,
                              retry_policy=FAST_RETRY) as service:
                blocker = service.train(other.name, n_steps=20)
                lead = service.render(dataset.name)
                mate = service.render(dataset.name)
                blocker.result(60)
                lead_result = lead.result(60)
                mate_result = mate.result(60)
                stats = service.stats()
        assert stats["retries"] == 1           # the lead, charged one attempt
        assert stats["requeues"] == 1          # the innocent mate
        # Both completed, re-dispatched individually (solo, never re-coalesced).
        assert lead_result.batch_size == 1 and mate_result.batch_size == 1
        np.testing.assert_array_equal(lead_result.colors, mate_result.colors)

    def test_worker_crash_respawns_and_requeues(self, rel_datasets,
                                                rel_config):
        injector = FaultInjector(seed=FAULT_SEED)
        injector.add("worker.crash", "raise-transient", times=1)
        with fault_injection(injector):
            with SceneService(rel_datasets[:1], rel_config, seed=0,
                              n_workers=1,
                              retry_policy=FAST_RETRY) as service:
                handle = service.train(rel_datasets[0].name, n_steps=2)
                result = handle.result(60)
                assert result.iteration == 2
                # The respawned worker keeps serving.
                service.render(rel_datasets[0].name).result(60)
                stats = service.stats()
        assert stats["workers_respawned"] == 1
        assert stats["retries"] == 1


class TestServiceLimits:
    def test_queue_full_admission_control(self, rel_datasets, rel_config):
        injector = FaultInjector(seed=FAULT_SEED)
        # Deterministically pin the single worker inside its first job.
        injector.add("worker.execute", "delay", delay_s=0.4, times=1)
        with fault_injection(injector):
            with SceneService(rel_datasets[:1], rel_config, seed=0,
                              n_workers=1, max_queue_depth=1) as service:
                blocker = service.train(rel_datasets[0].name, n_steps=1)
                deadline = time.perf_counter() + 30.0
                while service._pending and time.perf_counter() < deadline:
                    time.sleep(0.001)          # until the worker claims it
                queued = service.render(rel_datasets[0].name)
                with pytest.raises(QueueFull):
                    service.render(rel_datasets[0].name)
                blocker.result(60)
                queued.result(60)

    def test_deadline_shed_before_execution(self, rel_datasets, rel_config):
        injector = FaultInjector(seed=FAULT_SEED)
        injector.add("worker.execute", "delay", delay_s=0.2, times=1)
        with fault_injection(injector):
            with SceneService(rel_datasets[:1], rel_config, seed=0,
                              n_workers=1) as service:
                blocker = service.train(rel_datasets[0].name, n_steps=1)
                deadline = time.perf_counter() + 30.0
                while service._pending and time.perf_counter() < deadline:
                    time.sleep(0.001)          # deadline jobs rank first:
                doomed = service.render(rel_datasets[0].name,  # submit after
                                        deadline_s=0.01)       # the claim
                blocker.result(60)
                with pytest.raises(DeadlineExceeded):
                    doomed.result(60)
                assert service.stats()["shed"] >= 1

    def test_cancel_pending_and_inflight_semantics(self, rel_datasets,
                                                   rel_config):
        injector = FaultInjector(seed=FAULT_SEED)
        injector.add("worker.execute", "delay", delay_s=0.3, times=1)
        with fault_injection(injector):
            with SceneService(rel_datasets[:1], rel_config, seed=0,
                              n_workers=1) as service:
                inflight = service.train(rel_datasets[0].name, n_steps=1)
                deadline = time.perf_counter() + 30.0
                while service._pending and time.perf_counter() < deadline:
                    time.sleep(0.001)
                pending = service.render(rel_datasets[0].name)
                assert inflight.cancel() is False    # claimed: no-op
                assert pending.cancel() is True
                assert pending.cancel() is False     # already done
                with pytest.raises(JobCancelled):
                    pending.result(1)
                assert inflight.result(60).iteration == 1
                assert service.stats()["cancelled"] == 1

    def test_concurrent_submit_vs_close_never_hangs(self, rel_datasets,
                                                    rel_config):
        service = SceneService(rel_datasets[:1], rel_config, seed=0,
                               n_workers=2)
        handles, rejected = [], []
        lock = threading.Lock()

        def client():
            for _ in range(8):
                try:
                    handle = service.render(rel_datasets[0].name)
                except RuntimeError:
                    with lock:
                        rejected.append(1)
                    return
                with lock:
                    handles.append(handle)

        threads = [threading.Thread(target=client) for _ in range(4)]
        for thread in threads:
            thread.start()
        time.sleep(0.02)
        service.close()
        for thread in threads:
            thread.join()
        # Accepted-before-close handles either completed or were cancelled
        # at shutdown; nothing hangs or is left unset.
        outcomes = {"done": 0, "cancelled": 0}
        for handle in handles:
            try:
                handle.result(60)
                outcomes["done"] += 1
            except JobCancelled:
                outcomes["cancelled"] += 1
        assert outcomes["done"] + outcomes["cancelled"] == len(handles)

    def test_stats_under_contention(self, rel_datasets, rel_config):
        with SceneService(rel_datasets, rel_config, seed=0,
                          n_workers=2) as service:
            handles = [service.render(ds.name)
                       for ds in rel_datasets for _ in range(3)]
            errors = []

            def poll():
                try:
                    for _ in range(50):
                        snapshot = service.stats()
                        assert {"render_jobs", "retries", "shed",
                                "faults_injected"} <= set(snapshot)
                except BaseException as exc:  # noqa: BLE001 - collected
                    errors.append(exc)

            pollers = [threading.Thread(target=poll) for _ in range(3)]
            for thread in pollers:
                thread.start()
            for handle in handles:
                handle.result(60)
            for thread in pollers:
                thread.join()
            assert not errors


class TestGenerationFallbackInService:
    def test_truncated_checkpoint_falls_back_not_lost(self, rel_datasets,
                                                      rel_config, tmp_path):
        manager = ResidencyManager(rel_config, seed=0,
                                   checkpoint_dir=tmp_path / "ckpts",
                                   max_resident_scenes=1, keep_generations=2)
        for dataset in rel_datasets:
            manager.add_scene(dataset)
        lego, chair = rel_datasets[0].name, rel_datasets[1].name
        slot = manager.checkout(lego)
        slot.trainer.run_steps(4, slot.history)
        manager.save(slot)
        slot.trainer.run_steps(4, slot.history)
        manager.save(slot)                      # rotates iter-4 file to .g1
        manager.checkout(chair)                 # evicts lego
        path = manager.checkpoint_path(lego)
        with open(path, "r+b") as handle:       # torn write of the newest
            handle.truncate(path.stat().st_size // 2)
        slot = manager.checkout(lego)           # falls back, scene survives
        assert slot.trainer.iteration == 4
        assert manager.fallback_loads == 1
        assert manager.stats()["fallback_loads"] == 1.0
        assert path.with_name(path.name + ".corrupt").exists()
        # The recovered scene keeps training and re-checkpoints cleanly.
        slot.trainer.run_steps(2, slot.history)
        manager.save(slot)
        assert load_checkpoint(path, expected_kind="trainer",
                               fallback_generations=False).metadata[
                                   "iteration"] == 6


class TestChaosMixedLoad:
    """The acceptance scenario at test scale: p=0.05 faults, bit-equal results."""

    def _run(self, datasets, config, tmp_path, inject):
        if inject:
            injector = FaultInjector(seed=FAULT_SEED)
            for site in ("checkpoint.save", "checkpoint.load",
                         "worker.execute"):
                injector.add(site, "raise-transient", rate=0.05)
            install_injector(injector)
        try:
            policy = RetryPolicy(max_attempts=6, backoff_base_s=0.002,
                                 backoff_max_s=0.02)
            with SceneService(datasets, config, seed=0, n_workers=1,
                              checkpoint_dir=tmp_path, max_resident_scenes=1,
                              coalesce=False, keep_generations=2,
                              retry_policy=policy) as service:
                handles = []
                for round_index in range(4):
                    for dataset in datasets:
                        handles.append(service.train(dataset.name, n_steps=2))
                        handles.append(service.render(dataset.name))
                results = [handle.result(120) for handle in handles]
                stats = service.stats()
        finally:
            if inject:
                uninstall_injector()
        return results, stats

    def test_availability_and_bit_equality_under_faults(self, rel_datasets,
                                                        rel_config, tmp_path):
        reference, _ = self._run(rel_datasets, rel_config,
                                 tmp_path / "ref", inject=False)
        chaos, stats = self._run(rel_datasets, rel_config,
                                 tmp_path / "chaos", inject=True)
        assert stats["faults_injected"] > 0, \
            "chaos run injected nothing — rate/seed produce a vacuous test"
        assert stats["retries"] > 0
        assert stats["poisoned"] == 0          # availability 1.0
        assert len(chaos) == len(reference)
        for got, want in zip(chaos, reference):
            if hasattr(want, "losses"):
                assert got.losses == want.losses
                assert got.iteration == want.iteration
            else:
                np.testing.assert_array_equal(got.colors, want.colors)
                np.testing.assert_array_equal(got.depth, want.depth)
