"""System-level tests: traces, grid cores, device models, energy, full accelerator."""

import numpy as np
import pytest

from repro.accelerator import (
    AcceleratorConfig,
    AreaModel,
    EnergyModel,
    GridCoreSimulator,
    Instant3DAccelerator,
    JETSON_NANO,
    JETSON_TX2,
    XAVIER_NX,
    baseline_devices,
    extract_training_trace,
)
from repro.accelerator.devices import EdgeGPUModel
from repro.analysis.breakdown import runtime_breakdown
from repro.core.config import Instant3DConfig
from repro.training.profiler import PipelineStep, WorkloadScale, build_iteration_workload


@pytest.fixture(scope="module")
def paper_workloads():
    scale = WorkloadScale.paper_scale(n_iterations=1024)
    baseline = build_iteration_workload(Instant3DConfig.paper_scale_baseline(), scale)
    instant3d_gpu = build_iteration_workload(
        Instant3DConfig.paper_scale_baseline().with_ratios(
            color_size_ratio=0.25, color_update_freq=0.5), scale)
    instant3d_acc = build_iteration_workload(Instant3DConfig.paper_scale_instant3d(), scale)
    return {"baseline": baseline, "instant3d_gpu": instant3d_gpu,
            "instant3d_acc": instant3d_acc}


class TestMemoryTrace:
    def test_trace_structure(self, tiny_trace, tiny_config):
        assert set(tiny_trace.branches) == {"density", "color"}
        density = tiny_trace.branch("density")
        expected_reads = tiny_trace.n_points * 8 * tiny_config.grid.n_levels
        assert density.read_addresses.size == expected_reads
        assert density.write_addresses.size == expected_reads
        assert density.read_addresses.max() < density.table_entries

    def test_read_and_write_traces_are_permutations(self, tiny_trace):
        """Forward reads and backward updates touch the same multiset of addresses."""
        for branch in tiny_trace.branches.values():
            np.testing.assert_array_equal(np.sort(branch.read_addresses),
                                          np.sort(branch.write_addresses))

    def test_backward_trace_has_more_window_sharing(self, tiny_trace):
        """Level-major backward ordering revisits addresses within a window more
        than the point-major forward ordering (the Fig. 10 observation)."""
        from repro.analysis.access_patterns import sliding_window_unique_addresses

        branch = tiny_trace.branch("density")
        window = min(1000, branch.read_addresses.size)
        fwd = sliding_window_unique_addresses(branch.read_addresses, window=window)
        bwd = sliding_window_unique_addresses(branch.write_addresses, window=window)
        assert bwd.mean_unique <= fwd.mean_unique


class TestGridCoreSimulator:
    def test_forward_cycles_positive_and_bounded(self, tiny_trace):
        sim = GridCoreSimulator(AcceleratorConfig())
        branch = tiny_trace.branch("density")
        result = sim.simulate_forward(branch, table_bytes=512 * 1024)
        assert result.total_cycles > 0
        # Cannot be faster than the total bank bandwidth allows.
        min_cycles = branch.read_addresses.size / (4 * 8)
        assert result.sram_cycles >= min_cycles

    def test_frm_disable_increases_cycles(self, tiny_trace):
        branch = tiny_trace.branch("density")
        with_frm = GridCoreSimulator(AcceleratorConfig()).simulate_forward(
            branch, table_bytes=512 * 1024)
        without_frm = GridCoreSimulator(
            AcceleratorConfig(frm_enabled=False)).simulate_forward(
            branch, table_bytes=512 * 1024)
        assert without_frm.total_cycles > with_frm.total_cycles

    def test_bum_disable_increases_backward_cycles(self, tiny_trace):
        branch = tiny_trace.branch("density")
        with_bum = GridCoreSimulator(AcceleratorConfig()).simulate_backward(
            branch, table_bytes=512 * 1024)
        without_bum = GridCoreSimulator(
            AcceleratorConfig(bum_enabled=False)).simulate_backward(
            branch, table_bytes=512 * 1024)
        assert without_bum.total_cycles > with_bum.total_cycles
        assert with_bum.bum.write_reduction >= 0.0

    def test_fusion_disable_increases_cycles_for_large_table(self, tiny_trace):
        branch = tiny_trace.branch("density")
        fused = GridCoreSimulator(AcceleratorConfig()).simulate_forward(
            branch, table_bytes=1024 * 1024)
        unfused = GridCoreSimulator(
            AcceleratorConfig(fusion_enabled=False)).simulate_forward(
            branch, table_bytes=1024 * 1024)
        assert unfused.total_cycles > fused.total_cycles


class TestDeviceModels:
    def test_specs_match_table3(self):
        assert JETSON_NANO.typical_power_w == 10.0
        assert JETSON_TX2.typical_power_w == 15.0
        assert XAVIER_NX.typical_power_w == 20.0
        assert XAVIER_NX.dram_bandwidth_gbs == pytest.approx(59.7)

    def test_device_ordering_matches_paper(self, paper_workloads):
        """Per-scene runtime ordering: Nano slowest, Xavier NX fastest."""
        estimates = {name: model.estimate_training(paper_workloads["baseline"])
                     for name, model in baseline_devices().items()}
        assert (estimates["Jetson Nano"].total_s
                > estimates["Jetson TX2"].total_s
                > estimates["Xavier NX"].total_s)

    def test_xavier_runtime_near_paper_value(self, paper_workloads):
        """The paper measures ~72 s per NeRF-Synthetic scene on Xavier NX."""
        est = EdgeGPUModel(XAVIER_NX).estimate_training(paper_workloads["baseline"])
        assert 55.0 < est.total_s < 90.0

    def test_grid_step_dominates_runtime(self, paper_workloads):
        """Fig. 4: step ❸-① and its backward take ~80 % of training runtime."""
        for model in baseline_devices().values():
            est = model.estimate_training(paper_workloads["baseline"])
            breakdown = runtime_breakdown(est)
            assert breakdown.grid_fraction > 0.7

    def test_instant3d_algorithm_is_faster_on_same_device(self, paper_workloads):
        """Tab. 4 / Fig. 7: the algorithm alone gives a ~17 % runtime reduction."""
        xavier = EdgeGPUModel(XAVIER_NX)
        base = xavier.estimate_training(paper_workloads["baseline"])
        i3d = xavier.estimate_training(paper_workloads["instant3d_gpu"])
        ratio = i3d.total_s / base.total_s
        assert 0.70 < ratio < 0.95

    def test_energy_uses_typical_power(self, paper_workloads):
        est = EdgeGPUModel(XAVIER_NX).estimate_training(paper_workloads["baseline"])
        assert est.energy_j == pytest.approx(est.total_s * 20.0)

    def test_unknown_device_requires_params(self):
        from repro.accelerator.devices import DeviceSpec

        spec = DeviceSpec(name="Unknown", technology_nm=7, sram_mb=1, area_mm2=None,
                          frequency_ghz=1.0, dram="LPDDR5", dram_bandwidth_gbs=50,
                          typical_power_w=5.0)
        with pytest.raises(KeyError):
            EdgeGPUModel(spec)


class TestEnergyAndArea:
    def test_area_breakdown_matches_published_design(self):
        breakdown = AreaModel(AcceleratorConfig()).breakdown()
        assert 6.0 < breakdown.total_mm2 < 7.6          # paper: 6.8 mm^2
        assert 0.70 < breakdown.fraction("grid_cores") < 0.85   # paper: ~78 %
        assert 0.10 < breakdown.fraction("mlp") < 0.30          # paper: ~22 %

    def test_energy_breakdown_positive_components(self):
        model = EnergyModel(AcceleratorConfig())
        breakdown = model.breakdown(
            sram_read_bytes=1e9, sram_write_bytes=1e8, interpolation_macs=1e9,
            mlp_macs=5e9, activation_bytes=1e8, dram_bytes=1e8, runtime_s=2.0)
        assert breakdown.total_j > 0
        assert all(v >= 0 for v in breakdown.components_j.values())
        assert model.average_power_w(breakdown, 2.0) == pytest.approx(
            breakdown.total_j / 2.0)


class TestBranchRates:
    def test_backward_rate_uses_backward_phase_access_count(self, tiny_trace):
        """Regression: the trace-driven backward rate divided the *forward*
        read count by backward-phase cycles, halving the measured rate."""
        acc = Instant3DAccelerator(AcceleratorConfig())
        table_bytes = {name: 512 * 1024 for name in tiny_trace.branches}
        rates = acc._branch_rates(tiny_trace, table_bytes)
        for name, branch_rates in rates.items():
            bwd = branch_rates["backward_result"]
            assert bwd is not None
            # The rate must be the backward phase's own accesses/cycle:
            # gradient reads plus update writes over the phase's core cycles.
            assert branch_rates["backward_accesses_per_cycle"] == pytest.approx(
                bwd.n_accesses / max(bwd.core_cycles, 1))
            trace_branch = tiny_trace.branch(name)
            assert bwd.n_accesses == (trace_branch.read_addresses.size
                                      + trace_branch.write_addresses.size)

    def test_workload_backward_accesses_match_rate_units(self, paper_workloads):
        """GRID_BACKWARD counts reads + writes (2x the forward reads), the
        same unit the trace-measured backward rate is expressed in — so
        scaled cycles reproduce the grid-core simulator's own cycle count."""
        workload = paper_workloads["instant3d_acc"]
        for branch in ("density", "color"):
            fwd = [s for s in workload.branch_steps(branch)
                   if s.step == PipelineStep.GRID_FORWARD][0]
            bwd = [s for s in workload.branch_steps(branch)
                   if s.step == PipelineStep.GRID_BACKWARD][0]
            assert bwd.grid_accesses == 2.0 * fwd.grid_accesses
            assert bwd.grid_bytes == fwd.grid_bytes    # bytes stay per-direction

    def test_trace_driven_and_default_rates_are_consistent(self, paper_workloads,
                                                           tiny_trace):
        """Trace-driven and default-rate estimates describe the same machine:
        with matched units they should agree within a small factor."""
        acc = Instant3DAccelerator(AcceleratorConfig())
        with_trace = acc.estimate_training(paper_workloads["instant3d_acc"],
                                           trace=tiny_trace)
        without_trace = acc.estimate_training(paper_workloads["instant3d_acc"],
                                              trace=None)
        ratio = with_trace.per_iteration_s / without_trace.per_iteration_s
        assert 0.2 < ratio < 5.0
        # Backward is no slower than forward per access once the BUM merges
        # the update writes (the pre-fix estimate had it ~2x slower).
        table_bytes = {name: 512 * 1024 for name in tiny_trace.branches}
        rates = acc._branch_rates(tiny_trace, table_bytes)
        for branch_rates in rates.values():
            assert (branch_rates["backward_accesses_per_cycle"]
                    > 0.5 * branch_rates["forward_accesses_per_cycle"])


class TestInstant3DAccelerator:
    @pytest.fixture(scope="class")
    def full_estimate(self, paper_workloads, tiny_trace):
        acc = Instant3DAccelerator(AcceleratorConfig())
        return acc.estimate_training(paper_workloads["instant3d_acc"], trace=tiny_trace)

    def test_large_speedup_over_all_baselines(self, full_estimate, paper_workloads):
        """Fig. 16: the accelerator wins by a large factor on every baseline,
        with the Nano > TX2 > Xavier NX ordering preserved."""
        speedups = {}
        for name, model in baseline_devices().items():
            base = model.estimate_training(paper_workloads["baseline"])
            speedups[name] = full_estimate.speedup_over(base.total_s)
        assert speedups["Xavier NX"] > 3.0
        assert speedups["Jetson TX2"] > speedups["Xavier NX"]
        assert speedups["Jetson Nano"] > speedups["Jetson TX2"]

    def test_energy_efficiency_gain(self, full_estimate, paper_workloads):
        xavier = EdgeGPUModel(XAVIER_NX).estimate_training(paper_workloads["baseline"])
        assert full_estimate.energy_efficiency_over(xavier.energy_j) > 20.0

    def test_power_within_arvr_budget(self, full_estimate):
        """The design targets the 1.9 W AR/VR power constraint."""
        assert full_estimate.average_power_w < 2.5

    def test_frm_bum_ablation_ordering(self, paper_workloads, tiny_trace):
        """Fig. 18: removing FRM or BUM increases runtime; removing both is worst."""
        wl = paper_workloads["instant3d_acc"]
        full = Instant3DAccelerator(AcceleratorConfig()).estimate_training(wl, tiny_trace)
        no_bum = Instant3DAccelerator(
            AcceleratorConfig(bum_enabled=False)).estimate_training(wl, tiny_trace)
        no_both = Instant3DAccelerator(
            AcceleratorConfig(frm_enabled=False, bum_enabled=False)
        ).estimate_training(wl, tiny_trace)
        assert full.total_s < no_bum.total_s < no_both.total_s
        # FRM + BUM together trim a large fraction of the runtime (paper: 68.6 %).
        assert 1.0 - full.total_s / no_both.total_s > 0.4

    def test_fusion_ablation(self, paper_workloads, tiny_trace):
        """Fig. 17: the reconfigurable fusion scheme is a multi-x factor."""
        wl = paper_workloads["instant3d_acc"]
        fused = Instant3DAccelerator(AcceleratorConfig()).estimate_training(wl, tiny_trace)
        unfused = Instant3DAccelerator(
            AcceleratorConfig(fusion_enabled=False)).estimate_training(wl, tiny_trace)
        assert unfused.total_s / fused.total_s > 2.0

    def test_algorithm_contribution_on_accelerator(self, paper_workloads, tiny_trace):
        """Fig. 17: running the Instant-NGP-sized grids on the accelerator is
        several times slower than the Instant-3D configuration."""
        acc = Instant3DAccelerator(AcceleratorConfig())
        ngp = acc.estimate_training(paper_workloads["baseline"], tiny_trace)
        i3d = acc.estimate_training(paper_workloads["instant3d_acc"], tiny_trace)
        assert 1.5 < ngp.total_s / i3d.total_s < 8.0

    def test_estimate_without_trace_uses_defaults(self, paper_workloads):
        acc = Instant3DAccelerator(AcceleratorConfig())
        est = acc.estimate_training(paper_workloads["instant3d_acc"], trace=None)
        assert est.total_s > 0
        assert est.per_iteration_s > 0
