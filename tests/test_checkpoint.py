"""Tests for the checkpoint/resume subsystem (`repro.io`).

Two layers of guarantees:

* **round-trip exactness** — every `state_dict()` component (parameters,
  MLPs, hash grids, optimisers, occupancy grid, RNG streams, histories)
  restores bit-identically through the single-file `.npz` + JSON-manifest
  format;
* **differential resume** — interrupting a trainer or a fleet at an
  arbitrary iteration, restoring from the checkpoint (optionally in a
  "fresh process" with nothing but the file) and finishing produces
  bit-identical losses, parameters and PSNRs to an uninterrupted run, for
  both the dense and the occupancy-culled pipelines, with scene eviction
  exercised.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.config import Instant3DConfig
from repro.core.model import DecoupledRadianceField
from repro.datasets import nerf_synthetic_like
from repro.grid.hash_encoding import HashGridConfig, MultiResHashGrid
from repro.io import (
    CHECKPOINT_VERSION,
    CheckpointCorruptError,
    CheckpointError,
    generation_path,
    load_checkpoint,
    load_trainer_checkpoint,
    save_checkpoint,
    save_trainer_checkpoint,
)
from repro.nerf.occupancy import OccupancyGrid
from repro.nn.mlp import MLP
from repro.nn.optim import SGD, Adam
from repro.nn.parameter import Parameter
from repro.training import SceneFleet
from repro.training.trainer import Trainer, TrainingHistory
from repro.utils.seeding import new_rng


@pytest.fixture(scope="module")
def ckpt_config():
    """Tiny culled config whose occupancy schedule fires within short runs."""
    grid = HashGridConfig(n_levels=3, n_features_per_level=2,
                          log2_hashmap_size=9, base_resolution=4,
                          finest_resolution=16)
    return Instant3DConfig.instant_3d(
        grid=grid, batch_pixels=24, n_samples_per_ray=8,
        mlp_hidden_width=8, mlp_hidden_layers=1,
        culling_enabled=True, occupancy_resolution=8,
        occupancy_warmup_iterations=3, occupancy_update_every=2,
        occupancy_refresh_samples=256,
    )


@pytest.fixture(scope="module")
def ckpt_datasets():
    return nerf_synthetic_like(["lego", "ficus"], n_train_views=3,
                               n_test_views=1, image_size=14)


class TestCheckpointFile:
    """The generic single-file `.npz` + JSON-manifest container."""

    def test_round_trip_preserves_types_and_values(self, tmp_path):
        payload = {
            "weights": np.arange(6, dtype=np.float32).reshape(2, 3),
            "mask": np.array([True, False]),
            "nested": {"count": 7, "rate": 0.1, "label": "x",
                       "none": None, "big": 2 ** 100},
            "series": [1.5, {"inner": np.zeros(3, dtype=np.float64)}, "s"],
        }
        path = save_checkpoint(tmp_path / "state.npz", payload, kind="test",
                               metadata={"note": "hello"})
        loaded = load_checkpoint(path, expected_kind="test")
        assert loaded.version == CHECKPOINT_VERSION
        assert loaded.metadata == {"note": "hello"}
        np.testing.assert_array_equal(loaded.payload["weights"],
                                      payload["weights"])
        assert loaded.payload["weights"].dtype == np.float32
        np.testing.assert_array_equal(loaded.payload["mask"], payload["mask"])
        assert loaded.payload["nested"] == payload["nested"]
        assert loaded.payload["series"][0] == 1.5
        np.testing.assert_array_equal(loaded.payload["series"][1]["inner"],
                                      np.zeros(3))

    def test_kind_mismatch_and_missing_file(self, tmp_path):
        path = save_checkpoint(tmp_path / "a.npz", {"x": 1}, kind="trainer")
        with pytest.raises(CheckpointError):
            load_checkpoint(path, expected_kind="fleet")
        with pytest.raises(CheckpointError):
            load_checkpoint(tmp_path / "missing.npz")

    def test_non_checkpoint_npz_rejected(self, tmp_path):
        path = tmp_path / "plain.npz"
        np.savez(path, x=np.zeros(3))
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_version_1_files_rejected_with_clear_error(self, tmp_path):
        # Version-1 checkpoints predate the master-table grid layout (one
        # Parameter per level), so their optimiser state cannot be mapped
        # onto today's parameters; the version gate must say so up front
        # instead of failing deep inside the moment-shape validation.
        import json
        manifest = {"format": "repro-checkpoint", "version": 1,
                    "kind": "state", "metadata": {}, "payload": {"x": 1}}
        path = tmp_path / "old.npz"
        np.savez(path, __manifest__=np.array(json.dumps(manifest)))
        with pytest.raises(CheckpointError, match="version 1"):
            load_checkpoint(path)

    def test_unsupported_payloads_rejected(self, tmp_path):
        with pytest.raises(CheckpointError):
            save_checkpoint(tmp_path / "bad.npz", {"f": lambda: None})
        with pytest.raises(CheckpointError):
            save_checkpoint(tmp_path / "bad.npz", {1: "non-string key"})
        with pytest.raises(CheckpointError):
            save_checkpoint(tmp_path / "bad.npz", {"__npz__": "reserved"})
        # Object arrays would be pickled on save but rejected on load —
        # an unrestorable checkpoint — so refuse them up front.
        with pytest.raises(CheckpointError):
            save_checkpoint(tmp_path / "bad.npz",
                            {"o": np.array([1, "a"], dtype=object)})
        assert not (tmp_path / "bad.npz").exists()

    def test_save_replaces_existing_file_atomically(self, tmp_path):
        """A failed re-save must leave the previous checkpoint intact."""
        path = tmp_path / "state.npz"
        save_checkpoint(path, {"x": 1}, kind="test")
        with pytest.raises(CheckpointError):
            save_checkpoint(path, {"bad": lambda: None}, kind="test")
        assert load_checkpoint(path).payload == {"x": 1}
        save_checkpoint(path, {"x": 2}, kind="test")
        assert load_checkpoint(path).payload == {"x": 2}
        assert list(tmp_path.iterdir()) == [path]   # no temp files left

    def test_bit_flip_is_caught_by_digest_verification(self, tmp_path):
        # Flip one byte inside the archive: either the zip-member CRC or the
        # manifest digest check must refuse to return silently wrong arrays.
        path = save_checkpoint(tmp_path / "s.npz",
                               {"w": np.arange(256, dtype=np.float64)},
                               kind="test")
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(path, expected_kind="test")

    def test_generation_rotation_and_validation(self, tmp_path):
        path = tmp_path / "s.npz"
        save_checkpoint(path, {"v": 1}, kind="test", keep_generations=2)
        save_checkpoint(path, {"v": 2}, kind="test", keep_generations=2)
        save_checkpoint(path, {"v": 3}, kind="test", keep_generations=2)
        assert load_checkpoint(path).payload["v"] == 3
        assert load_checkpoint(generation_path(path, 1)).payload["v"] == 2
        assert not generation_path(path, 2).exists()
        with pytest.raises(ValueError):
            save_checkpoint(path, {"v": 4}, kind="test", keep_generations=0)


class TestComponentStateDicts:
    def test_parameter_round_trip(self):
        source = Parameter(np.arange(4, dtype=np.float32), name="p")
        target = Parameter(np.zeros(4), name="p")
        target.grad += 1.0
        target.load_state_dict(source.state_dict())
        np.testing.assert_array_equal(target.data, source.data)
        np.testing.assert_array_equal(target.grad, np.zeros(4))
        with pytest.raises(ValueError):
            Parameter(np.zeros(3), name="p").load_state_dict(source.state_dict())
        with pytest.raises(ValueError):
            Parameter(np.zeros(4), name="q").load_state_dict(source.state_dict())

    def test_mlp_round_trip(self):
        source = MLP(4, [8], 2, rng=new_rng(0))
        target = MLP(4, [8], 2, rng=new_rng(9))
        target.load_state_dict(source.state_dict())
        x = new_rng(1).uniform(size=(5, 4))
        np.testing.assert_array_equal(source.forward(x), target.forward(x))

    def test_hash_grid_round_trip(self, tiny_grid_config):
        source = MultiResHashGrid(tiny_grid_config, rng=new_rng(0))
        target = MultiResHashGrid(tiny_grid_config, rng=new_rng(5))
        target.load_state_dict(source.state_dict())
        points = new_rng(2).uniform(size=(32, 3))
        np.testing.assert_array_equal(source.forward(points),
                                      target.forward(points))

    def test_model_round_trip(self, tiny_config):
        source = DecoupledRadianceField(tiny_config, seed=3)
        target = DecoupledRadianceField(tiny_config, seed=4)
        target.load_state_dict(source.state_dict())
        points = new_rng(0).uniform(size=(16, 3))
        dirs = np.tile([0.0, 0.0, 1.0], (16, 1))
        src_sigma, src_rgb = source.query(points, dirs)
        dst_sigma, dst_rgb = target.query(points, dirs)
        np.testing.assert_array_equal(src_sigma, dst_sigma)
        np.testing.assert_array_equal(src_rgb, dst_rgb)

    @pytest.mark.parametrize("make_optimizer", [
        lambda params: Adam(params, lr=1e-2),
        lambda params: SGD(params, lr=1e-2, momentum=0.9),
    ])
    def test_optimizer_state_keyed_by_index_and_round_trips(self, tmp_path,
                                                            make_optimizer):
        def build():
            rng = new_rng(0)
            return [Parameter(rng.uniform(size=(3, 2)), name=f"p{i}")
                    for i in range(2)]

        def apply(params, optimizer, grads):
            for p, grad in zip(params, grads):
                p.zero_grad()
                p.accumulate_grad(grad)
            optimizer.step()

        params_a, params_b = build(), build()
        opt_a, opt_b = make_optimizer(params_a), make_optimizer(params_b)
        grad_rng = new_rng(7)
        grads = [[grad_rng.uniform(size=p.shape) for p in params_a]
                 for _ in range(6)]
        for step in range(3):
            apply(params_a, opt_a, grads[step])

        # State is keyed by parameter index (id() keys cannot round-trip and
        # can alias after id reuse).
        slots = opt_a._m if isinstance(opt_a, Adam) else opt_a._velocity
        assert set(slots.keys()) == {0, 1}

        path = save_checkpoint(tmp_path / "opt.npz",
                               {"opt": opt_a.state_dict(),
                                "params": [p.state_dict() for p in params_a]})
        loaded = load_checkpoint(path).payload
        for p, entry in zip(params_b, loaded["params"]):
            p.load_state_dict(entry)
        opt_b.load_state_dict(loaded["opt"])
        # Replaying the same gradients from the restored state must match an
        # uninterrupted run exactly.
        for step in range(3, 6):
            apply(params_a, opt_a, grads[step])
            apply(params_b, opt_b, grads[step])
        for pa, pb in zip(params_a, params_b):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_optimizer_rejects_bad_state(self):
        params = [Parameter(np.zeros((2, 2)), name="p0")]
        opt = Adam(params, lr=1e-2)
        with pytest.raises(ValueError):
            opt.load_state_dict({"step_count": 1,
                                 "m": {"5": np.zeros((2, 2))}, "v": {}})
        with pytest.raises(ValueError):
            opt.load_state_dict({"step_count": 1,
                                 "m": {"0": np.zeros(3)}, "v": {}})

    def test_occupancy_grid_round_trip_including_rng_stream(self):
        def ball(points):
            return np.where(np.linalg.norm(points - 0.5, axis=1) < 0.25,
                            10.0, 0.0)

        source = OccupancyGrid(resolution=8, occupancy_threshold=0.5, seed=3)
        source.update(ball, n_samples=512)
        source.mark_occupied(np.array([[0.05, 0.05, 0.05]]), density=2.0)
        target = OccupancyGrid(resolution=8, occupancy_threshold=0.5, seed=3)
        target.load_state_dict(source.state_dict())
        np.testing.assert_array_equal(source.density, target.density)
        assert target.n_updates == source.n_updates
        assert target.n_marks == source.n_marks
        points = new_rng(1).uniform(size=(64, 3))
        np.testing.assert_array_equal(source.filter_samples(points),
                                      target.filter_samples(points))
        # The probe RNG stream continues identically: the next update draws
        # the same point set on both grids.
        source.update(ball, n_samples=256)
        target.update(ball, n_samples=256)
        np.testing.assert_array_equal(source.density, target.density)

    def test_occupancy_grid_rejects_mismatched_config(self):
        source = OccupancyGrid(resolution=8)
        other = OccupancyGrid(resolution=16)
        with pytest.raises(ValueError):
            other.load_state_dict(source.state_dict())
        different_decay = OccupancyGrid(resolution=8, decay=0.5)
        with pytest.raises(ValueError):
            different_decay.load_state_dict(source.state_dict())

    def test_history_round_trip(self):
        source = TrainingHistory()
        source.record_step(1, 0.25, 12.0, queries_kept=10, queries_total=20,
                           occupancy_fraction=0.5)
        source.record_step(2, 0.125, 15.0, queries_kept=20, queries_total=20)
        target = TrainingHistory()
        target.load_state_dict(source.state_dict())
        assert target.iterations == source.iterations
        assert target.losses == source.losses
        assert target.queries_kept == source.queries_kept
        assert target.occupancy_fractions == source.occupancy_fractions


class TestTrainerCheckpoint:
    @pytest.mark.parametrize("culled", [False, True])
    def test_interrupt_resume_is_bit_identical(self, tmp_path, ckpt_config,
                                               ckpt_datasets, culled):
        """Interrupt at iteration k, restore into a fresh trainer, finish:
        losses and every parameter must match an uninterrupted run."""
        config = (ckpt_config if culled else
                  dataclasses.replace(ckpt_config, culling_enabled=False))
        dataset = ckpt_datasets[0]
        total, interrupt_at = 10, 4

        reference = Trainer(DecoupledRadianceField(config, seed=0), dataset,
                            config=config, seed=0)
        ref_history = TrainingHistory()
        reference.run_steps(total, ref_history)

        interrupted = Trainer(DecoupledRadianceField(config, seed=0), dataset,
                              config=config, seed=0)
        part_history = TrainingHistory()
        interrupted.run_steps(interrupt_at, part_history)
        path = save_trainer_checkpoint(tmp_path / "scene.ckpt.npz",
                                       interrupted, history=part_history)

        resumed = Trainer(DecoupledRadianceField(config, seed=0), dataset,
                          config=config, seed=0)
        resumed_history = TrainingHistory()
        metadata = load_trainer_checkpoint(path, resumed,
                                           history=resumed_history)
        assert metadata["scene"] == dataset.name
        assert metadata["iteration"] == interrupt_at
        assert resumed.iteration == interrupt_at
        resumed.run_steps(total - interrupt_at, resumed_history)

        assert resumed_history.losses == ref_history.losses
        assert resumed_history.batch_psnrs == ref_history.batch_psnrs
        assert resumed_history.queries_kept == ref_history.queries_kept
        assert resumed.density_updates == reference.density_updates
        assert resumed.color_updates == reference.color_updates
        for ref_param, res_param in zip(reference.model.parameters(),
                                        resumed.model.parameters()):
            np.testing.assert_array_equal(ref_param.data, res_param.data)
        if culled:
            np.testing.assert_array_equal(reference.occupancy.density,
                                          resumed.occupancy.density)

    def test_culling_config_mismatch_raises(self, tmp_path, ckpt_config,
                                            ckpt_datasets):
        dataset = ckpt_datasets[0]
        culled = Trainer(DecoupledRadianceField(ckpt_config, seed=0), dataset,
                         config=ckpt_config, seed=0)
        path = save_trainer_checkpoint(tmp_path / "c.ckpt.npz", culled)
        dense_config = dataclasses.replace(ckpt_config, culling_enabled=False)
        dense = Trainer(DecoupledRadianceField(dense_config, seed=0), dataset,
                        config=dense_config, seed=0)
        with pytest.raises(CheckpointError):
            load_trainer_checkpoint(path, dense)

    def test_history_requested_but_not_saved_raises(self, tmp_path,
                                                    ckpt_config, ckpt_datasets):
        trainer = Trainer(DecoupledRadianceField(ckpt_config, seed=0),
                          ckpt_datasets[0], config=ckpt_config, seed=0)
        path = save_trainer_checkpoint(tmp_path / "nohist.ckpt.npz", trainer)
        with pytest.raises(CheckpointError):
            load_trainer_checkpoint(path, trainer, history=TrainingHistory())


class TestFleetCheckpointResume:
    def _fleet(self, datasets, config, tmp_path, **kwargs):
        return SceneFleet(datasets, config, seed=0, slice_iterations=3,
                          checkpoint_dir=tmp_path / "ckpts", **kwargs)

    @pytest.mark.parametrize("culled", [False, True])
    def test_fleet_interrupt_resume_matches_uninterrupted(self, tmp_path,
                                                          ckpt_config,
                                                          ckpt_datasets,
                                                          culled):
        config = (ckpt_config if culled else
                  dataclasses.replace(ckpt_config, culling_enabled=False))
        total, interrupt_at = 10, 5
        uninterrupted = SceneFleet(ckpt_datasets, config, seed=0,
                                   slice_iterations=3).train(
            total, eval_every=5, eval_views=1, eval_samples=16)

        self._fleet(ckpt_datasets, config, tmp_path,
                    checkpoint_every=3).train(interrupt_at, eval_every=5,
                                              eval_views=1, eval_samples=16)
        # Resume in a *new* fleet object — nothing carries over but the files.
        resumed = self._fleet(ckpt_datasets, config, tmp_path).resume(
            total, eval_every=5, eval_views=1, eval_samples=16)

        assert resumed.scene_names == uninterrupted.scene_names
        for ref, res in zip(uninterrupted.results, resumed.results):
            assert res.history.losses == ref.history.losses
            assert res.history.eval_rgb_psnrs == ref.history.eval_rgb_psnrs
            assert res.rgb_psnr == ref.rgb_psnr
            assert res.depth_psnr == ref.depth_psnr
            assert res.density_updates == ref.density_updates
            assert res.color_updates == ref.color_updates
            assert res.final_occupancy_fraction == ref.final_occupancy_fraction

    def test_eviction_bounds_residency_and_preserves_results(self, tmp_path,
                                                             ckpt_config,
                                                             ckpt_datasets):
        reference = SceneFleet(ckpt_datasets, ckpt_config, seed=0,
                               slice_iterations=3).train(8, eval_views=1,
                                                         eval_samples=16)
        fleet = self._fleet(ckpt_datasets, ckpt_config, tmp_path,
                            max_resident_scenes=1)
        # Spy on acquire/evict to measure peak trainer residency: the cap
        # must hold even transiently (room is made *before* acquiring).
        live = {"now": 0, "peak": 0}
        orig_acquire, orig_release = fleet._acquire, fleet._release

        def acquire(slot):
            was_resident = slot.trainer is not None
            orig_acquire(slot)
            if not was_resident:
                live["now"] += 1
                live["peak"] = max(live["peak"], live["now"])

        def release(slot):
            was_resident = slot.trainer is not None
            orig_release(slot)
            if was_resident:
                live["now"] -= 1

        fleet._acquire, fleet._release = acquire, release
        evicted = fleet.train(8, eval_views=1, eval_samples=16)
        # With 2 scenes and a 1-trainer cap, every slice boundary evicts.
        assert evicted.evictions > 0
        assert live["peak"] <= 1
        assert fleet.evictions == evicted.evictions
        for name in fleet.scene_names:
            assert fleet.checkpoint_path(name).exists()
        for ref, res in zip(reference.results, evicted.results):
            assert res.history.losses == ref.history.losses
            assert res.rgb_psnr == ref.rgb_psnr

    def test_resume_of_partial_coverage_starts_missing_scenes_fresh(
            self, tmp_path, ckpt_config, ckpt_datasets):
        """A fleet resumed with an extra scene trains that scene from 0."""
        reference = SceneFleet(ckpt_datasets, ckpt_config, seed=0,
                               slice_iterations=3).train(6, eval_views=1,
                                                         eval_samples=16)
        self._fleet(ckpt_datasets[:1], ckpt_config, tmp_path).train(
            6, eval_views=1, eval_samples=16)
        resumed = self._fleet(ckpt_datasets, ckpt_config, tmp_path).resume(
            6, eval_views=1, eval_samples=16)
        for ref, res in zip(reference.results, resumed.results):
            assert res.history.losses == ref.history.losses
            assert res.rgb_psnr == ref.rgb_psnr

    def test_resume_beyond_target_raises(self, tmp_path, ckpt_config,
                                         ckpt_datasets):
        self._fleet(ckpt_datasets[:1], ckpt_config, tmp_path).train(
            6, eval_views=1, eval_samples=16)
        with pytest.raises(CheckpointError):
            self._fleet(ckpt_datasets[:1], ckpt_config, tmp_path).resume(
                4, eval_views=1, eval_samples=16)

    def test_checkpoint_knob_validation(self, ckpt_datasets, ckpt_config,
                                        tmp_path):
        with pytest.raises(ValueError):
            SceneFleet(ckpt_datasets, ckpt_config, checkpoint_every=4)
        with pytest.raises(ValueError):
            SceneFleet(ckpt_datasets, ckpt_config, max_resident_scenes=1)
        with pytest.raises(ValueError):
            SceneFleet(ckpt_datasets, ckpt_config,
                       checkpoint_dir=tmp_path, checkpoint_every=0)
        with pytest.raises(ValueError):
            SceneFleet(ckpt_datasets, ckpt_config,
                       checkpoint_dir=tmp_path, max_resident_scenes=0)
        with pytest.raises(ValueError):
            SceneFleet(ckpt_datasets, ckpt_config).resume(4)
