"""Differential tests for the unified compute-precision policy + workspace arena.

Four contracts anchor the tentpole:

(a) the ``float64`` policy (the default) is *bit-identical* to the
    pre-policy trainer — the frozen reference loop reproduces the same
    losses and parameters, dense and culled — so every existing experiment
    and checkpoint is unaffected;
(b) the ``float32`` fast path consumes the **same RNG draws** and tracks the
    float64 trajectory within float-precision tolerance (and its fused
    engine still matches the per-level reference engine);
(c) the workspace arena is allocation-bookkeeping only: steady-state train
    steps serve every buffer from the arena (zero misses) and results are
    bit-identical with the arena disabled;
(d) checkpoints record the policy dtype, refuse to resume across policies,
    and resume bit-identically within one.
"""

import dataclasses

import numpy as np
import pytest

from test_pipeline import _force_fully_occupied, _params_equal, _reference_dense_run

from repro.core.config import Instant3DConfig
from repro.core.model import DecoupledRadianceField
from repro.core.schedule import UpdateSchedule
from repro.grid.hash_encoding import HashGridConfig, MultiResHashGrid
from repro.io import CheckpointError, load_trainer_checkpoint, save_trainer_checkpoint
from repro.nn.layers import Linear
from repro.training.trainer import Trainer, TrainingHistory
from repro.utils.precision import FLOAT32, FLOAT64, PrecisionPolicy, resolve_policy
from repro.utils.seeding import new_rng
from repro.utils.workspace import WorkspaceArena
from repro.nn.activations import _Activation


class TestPrecisionPolicy:
    def test_resolve(self):
        assert resolve_policy(None) is FLOAT64
        assert resolve_policy("float32") is FLOAT32
        assert resolve_policy(np.float64) is FLOAT64
        assert resolve_policy(FLOAT32) is FLOAT32
        assert resolve_policy(np.dtype("float32")) is FLOAT32

    def test_dtypes(self):
        assert FLOAT32.dtype == np.float32
        assert FLOAT32.complex_dtype == np.complex64
        assert FLOAT64.dtype == np.float64
        assert FLOAT64.complex_dtype == np.complex128
        assert FLOAT64.is_reference and not FLOAT32.is_reference

    def test_invalid(self):
        with pytest.raises(ValueError):
            resolve_policy("float16")
        with pytest.raises(ValueError):
            PrecisionPolicy("int8")
        with pytest.raises(ValueError):
            Instant3DConfig(compute_dtype="half")

    def test_config_policy(self, tiny_config):
        assert tiny_config.precision_policy is FLOAT64
        f32 = dataclasses.replace(tiny_config, compute_dtype="float32")
        assert f32.precision_policy is FLOAT32


class TestWorkspaceArena:
    def test_reuse_and_growth(self):
        arena = WorkspaceArena()
        a = arena.buffer("x", (4, 3), np.float32)
        assert a.shape == (4, 3) and a.dtype == np.float32
        b = arena.buffer("x", (2, 3), np.float32)      # smaller: same backing
        assert np.shares_memory(a, b)
        c = arena.buffer("x", (64, 3), np.float32)     # larger: regrown
        assert c.shape == (64, 3)
        assert arena.misses == 2 and arena.hits == 1

    def test_zeros_and_stats(self):
        arena = WorkspaceArena()
        z = arena.zeros("z", 8, np.float64)
        assert np.all(z == 0.0)
        z[:] = 5.0
        assert np.all(arena.zeros("z", 8, np.float64) == 0.0)
        assert arena.total_bytes >= 64
        arena.reset_stats()
        assert arena.hits == 0 and arena.misses == 0
        arena.buffer("z", 8, np.float64)
        assert arena.hit_rate == 1.0

    def test_distinct_names_and_dtypes_do_not_alias(self):
        arena = WorkspaceArena()
        a = arena.buffer("a", 16, np.float32)
        b = arena.buffer("b", 16, np.float32)
        c = arena.buffer("a", 16, np.float64)
        assert not np.shares_memory(a, b)
        assert not np.shares_memory(a, c)


class TestFloat64ReferenceBitIdentity:
    def test_explicit_float64_matches_frozen_reference(self, tiny_config,
                                                       tiny_dataset):
        """(a) compute_dtype='float64' reproduces the pre-policy trainer."""
        config = dataclasses.replace(tiny_config, compute_dtype="float64")
        ref_model, ref_losses = _reference_dense_run(tiny_dataset, config,
                                                     seed=0, n_steps=20)
        model = DecoupledRadianceField(config, seed=0)
        trainer = Trainer(model, tiny_dataset, config=config, seed=0)
        losses = [trainer.train_step()["loss"] for _ in range(20)]
        assert losses == ref_losses
        assert _params_equal(model, ref_model)

    def test_arena_is_value_neutral(self, tiny_config, tiny_dataset):
        """(c) reuse_workspace=False produces bit-identical trajectories."""
        with_arena = dataclasses.replace(tiny_config, reuse_workspace=True)
        without = dataclasses.replace(tiny_config, reuse_workspace=False)
        m1 = DecoupledRadianceField(with_arena, seed=0)
        m2 = DecoupledRadianceField(without, seed=0)
        t1 = Trainer(m1, tiny_dataset, config=with_arena, seed=0)
        t2 = Trainer(m2, tiny_dataset, config=without, seed=0)
        assert t1.arena is not None and t2.arena is None
        l1 = [t1.train_step()["loss"] for _ in range(12)]
        l2 = [t2.train_step()["loss"] for _ in range(12)]
        assert l1 == l2
        assert _params_equal(m1, m2)

    def test_culled_float64_fully_occupied_matches_dense(self, tiny_config,
                                                         tiny_dataset):
        """(a) the culled float64 path is unchanged too."""
        dense = dataclasses.replace(tiny_config, compute_dtype="float64")
        dense_model = DecoupledRadianceField(dense, seed=0)
        dense_trainer = Trainer(dense_model, tiny_dataset, config=dense, seed=0)
        dense_losses = [dense_trainer.train_step()["loss"] for _ in range(10)]

        culled = dataclasses.replace(
            dense, culling_enabled=True, occupancy_warmup_iterations=10 ** 6)
        culled_model = DecoupledRadianceField(culled, seed=0)
        culled_trainer = Trainer(culled_model, tiny_dataset, config=culled,
                                 seed=0)
        _force_fully_occupied(culled_trainer.occupancy)
        culled_losses = [culled_trainer.train_step()["loss"] for _ in range(10)]
        assert culled_losses == dense_losses
        assert _params_equal(culled_model, dense_model)


class TestFloat32FastPath:
    @staticmethod
    def _losses(config, dataset, n_steps, seed=0):
        model = DecoupledRadianceField(config, seed=seed)
        trainer = Trainer(model, dataset, config=config, seed=seed)
        return [trainer.train_step()["loss"] for _ in range(n_steps)], trainer

    def test_tracks_float64_within_tolerance(self, tiny_config, tiny_dataset):
        """(b) same RNG draws, float-precision-only divergence."""
        f64 = dataclasses.replace(tiny_config, compute_dtype="float64")
        f32 = dataclasses.replace(tiny_config, compute_dtype="float32")
        l64, _ = self._losses(f64, tiny_dataset, 20)
        l32, _ = self._losses(f32, tiny_dataset, 20)
        np.testing.assert_allclose(l32, l64, rtol=1e-3)

    def test_culled_float32_trains(self, tiny_config, tiny_dataset):
        config = dataclasses.replace(
            tiny_config, compute_dtype="float32", culling_enabled=True,
            occupancy_warmup_iterations=8, occupancy_update_every=4)
        model = DecoupledRadianceField(config, seed=0)
        trainer = Trainer(model, tiny_dataset, config=config, seed=0)
        history = TrainingHistory()
        trainer.run_steps(80, history)
        assert history.queries_kept[-1] < history.queries_total[-1]
        assert history.losses[-1] < history.losses[0]
        result = trainer.finalize(history, eval_samples=16)
        assert np.isfinite(result.rgb_psnr)

    def test_fused_engine_matches_per_level_loop(self, tiny_grid_config):
        grid32 = MultiResHashGrid(tiny_grid_config, rng=new_rng(0),
                                  policy=FLOAT32)
        loop32 = MultiResHashGrid(tiny_grid_config, rng=new_rng(0),
                                  policy=FLOAT32, fused=False)
        points = new_rng(3).uniform(size=(512, 3)).astype(np.float32)
        out_fused = grid32.forward(points)
        out_loop = loop32.forward(points)
        assert out_fused.dtype == np.float32
        np.testing.assert_allclose(out_fused, out_loop, atol=1e-5)
        assert np.array_equal(grid32.last_access.flat_addresses(),
                              loop32.last_access.flat_addresses())
        grad = np.ones((512, tiny_grid_config.n_output_features),
                       dtype=np.float32)
        grid32.zero_grad(); grid32.backward(grad)
        loop32.zero_grad(); loop32.backward(grad)
        for a, b in zip(grid32.levels, loop32.levels):
            np.testing.assert_allclose(a.table.grad, b.table.grad, atol=1e-4)

    def test_chunked_query_bit_identical(self, tiny_grid_config):
        whole = MultiResHashGrid(tiny_grid_config, rng=new_rng(0),
                                 policy=FLOAT32)
        chunked = MultiResHashGrid(tiny_grid_config, rng=new_rng(0),
                                   policy=FLOAT32, max_chunk_points=100)
        points = new_rng(3).uniform(size=(513, 3))
        assert np.array_equal(whole.forward(points), chunked.forward(points))


class TestDtypeDiscipline:
    def test_no_silent_linear_conversions_under_float32(self, tiny_config,
                                                        tiny_dataset):
        """Satellite: the float32 policy feeds every Linear float32 arrays —
        zero silent copies across forward and backward of a train step."""
        config = dataclasses.replace(tiny_config, compute_dtype="float32")
        model = DecoupledRadianceField(config, seed=0)
        trainer = Trainer(model, tiny_dataset, config=config, seed=0)
        for _ in range(3):
            trainer.train_step()
        layers = [l for mlp in (model.density_mlp, model.color_mlp)
                  for l in mlp.layers if isinstance(l, Linear)]
        assert layers
        assert sum(l.conversions for l in layers) == 0

    def test_conversion_counter_detects_copies(self, rng):
        layer = Linear(4, 2, rng=rng)
        layer.forward(np.ones((3, 4), dtype=np.float64))
        assert layer.conversions == 1
        layer.forward(np.ones((3, 4), dtype=np.float32))
        assert layer.conversions == 1

    def test_float32_planes_end_to_end(self, tiny_config, tiny_dataset):
        config = dataclasses.replace(tiny_config, compute_dtype="float32")
        model = DecoupledRadianceField(config, seed=0)
        trainer = Trainer(model, tiny_dataset, config=config, seed=0)
        trainer.train_step()
        renderer = trainer.pipeline.renderer
        assert renderer._cache["sigmas"].dtype == np.float32
        assert renderer._cache["weights"].dtype == np.float32
        assert model.encoder.density_grid._last_weight_planes.dtype == np.float32


class TestArenaSteadyState:
    def test_zero_misses_after_warmup(self, tiny_config, tiny_dataset):
        """The zero-allocation contract: after shapes stabilise, every
        per-iteration buffer is an arena hit."""
        config = dataclasses.replace(tiny_config, compute_dtype="float32")
        model = DecoupledRadianceField(config, seed=0)
        trainer = Trainer(model, tiny_dataset, config=config, seed=0)
        for _ in range(3):
            trainer.train_step()
        trainer.arena.reset_stats()
        for _ in range(5):
            trainer.train_step()
        assert trainer.arena.misses == 0
        assert trainer.arena.hits > 0
        assert trainer.arena.hit_rate == 1.0

    def test_components_propagate_arena(self, tiny_config, tiny_dataset):
        model = DecoupledRadianceField(tiny_config, seed=0)
        trainer = Trainer(model, tiny_dataset, config=tiny_config, seed=0)
        arena = trainer.arena
        assert model.arena is arena
        assert model.encoder.density_grid.arena is arena
        assert trainer.pipeline.arena is arena
        assert trainer.pipeline.renderer.arena is arena
        assert trainer.density_optimizer.arena is arena
        for mlp in (model.density_mlp, model.color_mlp):
            for layer in mlp.layers:
                assert layer.arena is arena
                if isinstance(layer, _Activation):
                    assert layer.name is not None


class TestCheckpointPrecision:
    def test_roundtrip_preserves_dtype_and_resumes_bit_identically(
            self, tiny_config, tiny_dataset, tmp_path):
        config = dataclasses.replace(tiny_config, compute_dtype="float32")
        model = DecoupledRadianceField(config, seed=0)
        trainer = Trainer(model, tiny_dataset, config=config, seed=0)
        history = TrainingHistory()
        trainer.run_steps(8, history)
        path = tmp_path / "f32.ckpt.npz"
        save_trainer_checkpoint(path, trainer, history=history)

        restored = Trainer(DecoupledRadianceField(config, seed=0),
                           tiny_dataset, config=config, seed=0)
        restored_history = TrainingHistory()
        load_trainer_checkpoint(path, restored, history=restored_history)
        assert restored.iteration == trainer.iteration
        continued = [trainer.train_step()["loss"] for _ in range(6)]
        resumed = [restored.train_step()["loss"] for _ in range(6)]
        assert continued == resumed

    def test_state_dict_records_policy(self, tiny_config, tiny_dataset):
        config = dataclasses.replace(tiny_config, compute_dtype="float32")
        trainer = Trainer(DecoupledRadianceField(config, seed=0),
                          tiny_dataset, config=config, seed=0)
        assert trainer.state_dict()["compute_dtype"] == "float32"

    def test_cross_policy_resume_rejected(self, tiny_config, tiny_dataset,
                                          tmp_path):
        f32 = dataclasses.replace(tiny_config, compute_dtype="float32")
        trainer = Trainer(DecoupledRadianceField(f32, seed=0), tiny_dataset,
                          config=f32, seed=0)
        trainer.train_step()
        path = tmp_path / "f32.ckpt.npz"
        save_trainer_checkpoint(path, trainer)

        f64 = dataclasses.replace(tiny_config, compute_dtype="float64")
        other = Trainer(DecoupledRadianceField(f64, seed=0), tiny_dataset,
                        config=f64, seed=0)
        with pytest.raises(CheckpointError, match="compute_dtype"):
            load_trainer_checkpoint(path, other)


class TestScheduleClosedForm:
    @pytest.mark.parametrize("frequency", [1.0, 0.5, 0.25, 0.75, 1 / 3, 0.9,
                                           0.123, 2 / 7])
    @pytest.mark.parametrize("n", [0, 1, 7, 64, 257])
    def test_matches_loop_oracle(self, frequency, n):
        schedule = UpdateSchedule(frequency)
        assert schedule.updates_in(n) == schedule._updates_in_loop(n)

    def test_property_random_frequencies(self):
        rng = new_rng(7)
        for _ in range(50):
            frequency = float(rng.uniform(0.01, 1.0))
            n = int(rng.integers(0, 200))
            schedule = UpdateSchedule(frequency)
            assert schedule.updates_in(n) == schedule._updates_in_loop(n)
