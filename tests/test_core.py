"""Tests for the Instant-3D core: config, schedules, decoupled grids, model, search."""

import numpy as np
import pytest

from repro.core import (
    BranchSchedules,
    DecoupledGridEncoder,
    DecoupledRadianceField,
    Instant3DConfig,
    UpdateSchedule,
    grid_ratio_search,
)
from repro.utils.seeding import new_rng


class TestInstant3DConfig:
    def test_named_configs(self):
        baseline = Instant3DConfig.instant_ngp_baseline()
        proposed = Instant3DConfig.instant_3d()
        assert baseline.is_baseline
        assert not proposed.is_baseline
        assert proposed.color_size_ratio == 0.25
        assert proposed.color_update_freq == 0.5
        assert proposed.density_update_freq == 1.0

    def test_color_grid_config_is_scaled(self):
        config = Instant3DConfig.instant_3d()
        assert (config.color_grid_config.max_table_entries
                < config.density_grid_config.max_table_entries)
        assert config.color_grid_config.n_levels == config.density_grid_config.n_levels

    def test_with_ratios(self):
        config = Instant3DConfig.instant_ngp_baseline().with_ratios(
            color_size_ratio=0.5, color_update_freq=0.25)
        assert config.color_size_ratio == 0.5
        assert config.color_update_freq == 0.25
        assert config.density_update_freq == 1.0

    def test_labels(self):
        config = Instant3DConfig.instant_3d()
        assert config.size_ratio_label == "1:0.25"
        assert config.freq_ratio_label == "1:0.5"

    def test_validation(self):
        with pytest.raises(ValueError):
            Instant3DConfig(color_size_ratio=0.0)
        with pytest.raises(ValueError):
            Instant3DConfig(color_update_freq=1.5)
        with pytest.raises(ValueError):
            Instant3DConfig(batch_pixels=0)

    def test_paper_scale_configs(self):
        gpu = Instant3DConfig.paper_scale_baseline()
        acc = Instant3DConfig.paper_scale_instant3d()
        # The GPU workload queries >200k points per iteration (paper Sec. 1).
        assert gpu.points_per_iteration > 150_000
        assert acc.color_size_ratio == 0.25 and acc.color_update_freq == 0.5
        assert gpu.grid.log2_hashmap_size > acc.grid.log2_hashmap_size

    def test_points_per_iteration(self):
        config = Instant3DConfig(batch_pixels=128, n_samples_per_ray=32)
        assert config.points_per_iteration == 128 * 32


class TestUpdateSchedule:
    def test_full_frequency_always_updates(self):
        schedule = UpdateSchedule(1.0)
        assert all(schedule.should_update(i) for i in range(20))

    def test_half_frequency_updates_every_other(self):
        schedule = UpdateSchedule(0.5)
        updates = [schedule.should_update(i) for i in range(10)]
        assert sum(updates) == 5
        assert updates == [False, True] * 5

    @pytest.mark.parametrize("freq", [0.25, 0.4, 0.5, 0.75, 1.0])
    def test_update_fraction_converges_to_frequency(self, freq):
        schedule = UpdateSchedule(freq)
        assert schedule.update_fraction(400) == pytest.approx(freq, abs=0.01)

    def test_invalid_frequency(self):
        with pytest.raises(ValueError):
            UpdateSchedule(0.0)
        with pytest.raises(ValueError):
            UpdateSchedule(1.5)

    def test_branch_schedules(self):
        schedules = BranchSchedules.from_frequencies(1.0, 0.5)
        density_updates = sum(schedules.updates_at(i)[0] for i in range(8))
        color_updates = sum(schedules.updates_at(i)[1] for i in range(8))
        assert density_updates == 8
        assert color_updates == 4


class TestDecoupledGridEncoder:
    def test_color_grid_smaller_than_density(self, tiny_config):
        encoder = DecoupledGridEncoder(tiny_config, seed=0)
        storage = encoder.branch_storage_bytes()
        assert storage["color"] < storage["density"]
        assert encoder.total_storage_bytes() == storage["color"] + storage["density"]

    def test_baseline_grids_equal_size(self, baseline_tiny_config):
        encoder = DecoupledGridEncoder(baseline_tiny_config, seed=0)
        storage = encoder.branch_storage_bytes()
        assert storage["color"] == storage["density"]

    def test_encode_and_backward_roundtrip(self, tiny_config):
        encoder = DecoupledGridEncoder(tiny_config, seed=0)
        points = new_rng(0).uniform(size=(13, 3))
        demb = encoder.encode_density(points)
        cemb = encoder.encode_color(points)
        assert demb.shape[0] == cemb.shape[0] == 13
        encoder.zero_grad()
        encoder.backward_density(np.ones_like(demb))
        encoder.backward_color(np.ones_like(cemb))
        assert any(np.any(p.grad != 0) for p in encoder.density_parameters())
        assert any(np.any(p.grad != 0) for p in encoder.color_parameters())

    def test_access_records_available(self, tiny_config):
        encoder = DecoupledGridEncoder(tiny_config, seed=0)
        points = new_rng(1).uniform(size=(5, 3))
        encoder.encode_density(points)
        encoder.encode_color(points)
        records = encoder.last_access_records()
        assert records["density"].n_points == 5
        assert records["color"].n_points == 5

    def test_max_chunk_points_plumbed_and_identical(self, tiny_config):
        """Chunked (bounded-memory) queries must match unchunked bit for bit."""
        import dataclasses

        chunked_config = dataclasses.replace(tiny_config, max_chunk_points=7)
        whole = DecoupledGridEncoder(tiny_config, seed=0)
        chunked = DecoupledGridEncoder(chunked_config, seed=0)
        assert chunked.density_grid.max_chunk_points == 7
        assert chunked.color_grid.max_chunk_points == 7
        points = new_rng(2).uniform(size=(23, 3))
        np.testing.assert_array_equal(whole.encode_density(points),
                                      chunked.encode_density(points))
        np.testing.assert_array_equal(whole.encode_color(points),
                                      chunked.encode_color(points))

    def test_invalid_max_chunk_points_rejected(self, tiny_config):
        import dataclasses

        with pytest.raises(ValueError):
            dataclasses.replace(tiny_config, max_chunk_points=0)


class TestDecoupledRadianceField:
    def test_query_shapes_and_ranges(self, tiny_model):
        points = new_rng(0).uniform(size=(21, 3))
        dirs = new_rng(1).normal(size=(21, 3))
        sigma, rgb = tiny_model.query(points, dirs)
        assert sigma.shape == (21,)
        assert rgb.shape == (21, 3)
        assert np.all(sigma >= 0.0)
        assert np.all((rgb >= 0.0) & (rgb <= 1.0))

    def test_backward_updates_both_branches_when_enabled(self, tiny_config):
        model = DecoupledRadianceField(tiny_config, seed=1)
        points = new_rng(2).uniform(size=(9, 3))
        dirs = new_rng(3).normal(size=(9, 3))
        sigma, rgb = model.query(points, dirs)
        model.zero_grad()
        model.backward(np.ones_like(sigma), np.ones_like(rgb))
        assert any(np.any(p.grad != 0) for p in model.density_parameters())
        assert any(np.any(p.grad != 0) for p in model.color_parameters())

    def test_backward_skips_color_branch_when_disabled(self, tiny_config):
        model = DecoupledRadianceField(tiny_config, seed=1)
        points = new_rng(2).uniform(size=(9, 3))
        dirs = new_rng(3).normal(size=(9, 3))
        sigma, rgb = model.query(points, dirs)
        model.zero_grad()
        model.backward(np.ones_like(sigma), np.ones_like(rgb), update_color=False)
        assert all(np.all(p.grad == 0) for p in model.color_parameters())
        assert any(np.any(p.grad != 0) for p in model.density_parameters())

    def test_backward_before_query_raises(self, tiny_config):
        model = DecoupledRadianceField(tiny_config, seed=2)
        with pytest.raises(RuntimeError):
            model.backward(np.zeros(3), np.zeros((3, 3)))

    def test_workload_accounting(self, tiny_model, tiny_config):
        accesses = tiny_model.grid_accesses_per_point()
        assert accesses["density"] == 8 * tiny_config.grid.n_levels
        assert accesses["color"] == 8 * tiny_config.grid.n_levels
        assert tiny_model.mlp_flops_per_point() > 0
        assert tiny_model.n_parameters > 0

    def test_mismatched_inputs_raise(self, tiny_model):
        with pytest.raises(ValueError):
            tiny_model.query(np.zeros((4, 3)), np.zeros((5, 3)))


class TestGridRatioSearch:
    def test_selects_fastest_quality_preserving_config(self):
        base = Instant3DConfig.instant_ngp_baseline()

        def fake_psnr(config):
            # Aggressive color compression hurts slightly; mild compression does not.
            penalty = 0.0
            if config.color_size_ratio < 0.25:
                penalty += 0.5
            if config.color_update_freq < 0.5:
                penalty += 0.5
            return 26.0 - penalty

        def fake_runtime(config):
            return 72.0 * (0.6 + 0.25 * config.color_size_ratio
                           + 0.15 * config.color_update_freq)

        result = grid_ratio_search(base, fake_psnr, fake_runtime,
                                   size_ratios=(0.125, 0.25, 0.5, 1.0),
                                   update_ratios=(0.5, 1.0))
        assert result.selected.color_size_ratio == 0.25
        assert result.selected.color_update_freq == 0.5
        assert result.selected_runtime < 72.0
        assert result.selected_psnr >= result.baseline_psnr - 0.15

    def test_falls_back_to_baseline_when_nothing_preserves_quality(self):
        base = Instant3DConfig.instant_ngp_baseline()
        result = grid_ratio_search(
            base,
            evaluate_psnr=lambda c: 26.0 if c.is_baseline else 20.0,
            evaluate_runtime=lambda c: 10.0 if not c.is_baseline else 72.0,
            size_ratios=(0.25,),
            update_ratios=(0.5,),
        )
        assert result.selected.is_baseline
