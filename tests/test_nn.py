"""Tests for the tiny neural-network library (layers, MLP, optimisers)."""

import numpy as np
import pytest

from repro.nn import (
    MLP,
    Adam,
    Linear,
    Parameter,
    ReLU,
    SGD,
    Sigmoid,
    Softplus,
    TruncatedExp,
    numerical_gradient,
)
from repro.utils.seeding import new_rng


class TestParameter:
    def test_grad_starts_zero(self):
        p = Parameter(np.ones((2, 3)))
        assert np.all(p.grad == 0.0)

    def test_accumulate_and_zero(self):
        p = Parameter(np.zeros((2, 2)))
        p.accumulate_grad(np.ones((2, 2)))
        p.accumulate_grad(np.ones((2, 2)))
        np.testing.assert_allclose(p.grad, 2.0)
        p.zero_grad()
        np.testing.assert_allclose(p.grad, 0.0)

    def test_shape_mismatch_raises(self):
        p = Parameter(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            p.accumulate_grad(np.zeros(3))


class TestLinear:
    def test_forward_shape(self):
        layer = Linear(4, 6, rng=new_rng(0))
        out = layer.forward(np.random.default_rng(0).normal(size=(5, 4)))
        assert out.shape == (5, 6)

    def test_invalid_input_shape_raises(self):
        layer = Linear(4, 6, rng=new_rng(0))
        with pytest.raises(ValueError):
            layer.forward(np.zeros((5, 3)))

    def test_backward_before_forward_raises(self):
        layer = Linear(2, 2, rng=new_rng(0))
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 2)))

    def test_weight_gradient_matches_numerical(self):
        rng = new_rng(3)
        layer = Linear(3, 2, rng=rng)
        x = rng.normal(size=(4, 3)).astype(np.float32)
        target = rng.normal(size=(4, 2)).astype(np.float32)

        def loss_for_weights(w):
            saved = layer.weight.data.copy()
            layer.weight.data = w.astype(np.float32)
            out = layer.forward(x)
            layer.weight.data = saved
            return float(np.sum((out - target) ** 2))

        out = layer.forward(x)
        layer.backward(2.0 * (out - target))
        numeric = numerical_gradient(loss_for_weights, layer.weight.data.astype(np.float64))
        np.testing.assert_allclose(layer.weight.grad, numeric, rtol=1e-2, atol=1e-2)

    def test_input_gradient_matches_numerical(self):
        rng = new_rng(4)
        layer = Linear(3, 2, rng=rng)
        x = rng.normal(size=(2, 3))

        def loss_for_input(xi):
            return float(np.sum(layer.forward(xi) ** 2))

        out = layer.forward(x)
        grad_in = layer.backward(2.0 * out)
        numeric = numerical_gradient(loss_for_input, x.copy())
        np.testing.assert_allclose(grad_in, numeric, rtol=1e-2, atol=1e-2)

    def test_flops_per_sample(self):
        layer = Linear(8, 4, rng=new_rng(0))
        assert layer.flops_per_sample == 2 * 8 * 4 + 4


class TestActivations:
    @pytest.mark.parametrize("activation_cls", [ReLU, Sigmoid, TruncatedExp, Softplus])
    def test_gradient_matches_numerical(self, activation_cls):
        act = activation_cls()
        rng = new_rng(5)
        x = rng.normal(size=(3, 4))

        def loss(xi):
            fresh = activation_cls()
            return float(np.sum(fresh.forward(xi) ** 2))

        out = act.forward(x)
        grad = act.backward(2.0 * out)
        numeric = numerical_gradient(loss, x.copy())
        np.testing.assert_allclose(grad, numeric, rtol=1e-2, atol=1e-2)

    def test_relu_zeroes_negative(self):
        out = ReLU().forward(np.array([[-1.0, 2.0]]))
        np.testing.assert_allclose(out, [[0.0, 2.0]])

    def test_sigmoid_range(self):
        out = Sigmoid().forward(np.array([[-100.0, 0.0, 100.0]]))
        assert np.all(out >= 0.0) and np.all(out <= 1.0)

    def test_truncated_exp_clamps(self):
        act = TruncatedExp(clamp=5.0)
        out = act.forward(np.array([[100.0]]))
        assert np.isclose(out[0, 0], np.exp(5.0), rtol=1e-5)


class TestMLP:
    def test_output_shape_and_param_count(self):
        mlp = MLP(4, [8, 8], 2, rng=new_rng(0))
        out = mlp.forward(np.zeros((3, 4), dtype=np.float32))
        assert out.shape == (3, 2)
        expected_params = (4 * 8 + 8) + (8 * 8 + 8) + (8 * 2 + 2)
        assert mlp.num_parameters == expected_params

    def test_backward_accumulates_all_parameter_grads(self):
        mlp = MLP(3, [5], 2, rng=new_rng(1))
        x = new_rng(2).normal(size=(6, 3))
        out = mlp.forward(x)
        mlp.backward(np.ones_like(out))
        assert all(np.any(p.grad != 0.0) for p in mlp.parameters())

    def test_zero_grad(self):
        mlp = MLP(3, [5], 2, rng=new_rng(1))
        out = mlp.forward(np.ones((2, 3), dtype=np.float32))
        mlp.backward(np.ones_like(out))
        mlp.zero_grad()
        assert all(np.all(p.grad == 0.0) for p in mlp.parameters())

    def test_gradient_matches_numerical_on_first_layer(self):
        mlp = MLP(2, [4], 1, rng=new_rng(7))
        x = new_rng(8).normal(size=(3, 2)).astype(np.float32)
        first_weight = mlp.parameters()[0]

        def loss_for(w):
            saved = first_weight.data.copy()
            first_weight.data = w.astype(np.float32)
            out = mlp.forward(x)
            first_weight.data = saved
            return float(np.sum(out ** 2))

        out = mlp.forward(x)
        mlp.zero_grad()
        mlp.backward(2.0 * out)
        numeric = numerical_gradient(loss_for, first_weight.data.astype(np.float64))
        np.testing.assert_allclose(first_weight.grad, numeric, rtol=2e-2, atol=2e-2)


class TestOptimizers:
    def _quadratic_problem(self):
        param = Parameter(np.array([5.0, -3.0]))
        return param

    def test_sgd_reduces_quadratic(self):
        param = self._quadratic_problem()
        opt = SGD([param], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            param.accumulate_grad(2.0 * param.data)
            opt.step()
        assert np.linalg.norm(param.data) < 1e-3

    def test_adam_reduces_quadratic(self):
        param = self._quadratic_problem()
        opt = Adam([param], lr=0.2)
        for _ in range(200):
            opt.zero_grad()
            param.accumulate_grad(2.0 * param.data)
            opt.step()
        assert np.linalg.norm(param.data) < 1e-2

    def test_adam_step_count(self):
        param = Parameter(np.zeros(2))
        opt = Adam([param], lr=0.1)
        opt.step()
        opt.step()
        assert opt.step_count == 2

    def test_invalid_lr_raises(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], lr=0.0)
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=-1.0)

    def test_sgd_momentum_accelerates(self):
        param_plain = Parameter(np.array([10.0]))
        param_momentum = Parameter(np.array([10.0]))
        plain = SGD([param_plain], lr=0.01)
        momentum = SGD([param_momentum], lr=0.01, momentum=0.9)
        for _ in range(50):
            for opt, param in ((plain, param_plain), (momentum, param_momentum)):
                opt.zero_grad()
                param.accumulate_grad(2.0 * param.data)
                opt.step()
        assert abs(param_momentum.data[0]) < abs(param_plain.data[0])
