"""Tests for the NeRF substrate: cameras, sampling, volume rendering, losses."""

import numpy as np
import pytest

from repro.nerf import (
    PinholeCamera,
    RayBundle,
    VanillaNeRF,
    VanillaNeRFConfig,
    VolumeRenderer,
    mse_loss,
    mse_to_psnr,
    positional_encoding,
    psnr,
    sample_pixel_batch,
    spherical_harmonics_encoding,
    stratified_samples,
    ray_points,
)
from repro.nerf.encoding import positional_encoding_dim, spherical_harmonics_dim
from repro.nerf.sampling import normalize_points_to_unit_cube
from repro.nn.gradcheck import numerical_gradient
from repro.utils.math3d import look_at_pose
from repro.utils.seeding import new_rng


def _camera(width=8, height=6, near=0.5, far=3.0):
    pose = look_at_pose(eye=[0.0, -2.0, 0.0], target=[0.0, 0.0, 0.0])
    return PinholeCamera(width=width, height=height, focal=10.0, pose=pose,
                         near=near, far=far)


class TestPinholeCamera:
    def test_all_rays_count_and_unit_directions(self):
        cam = _camera()
        bundle = cam.all_rays()
        assert bundle.n_rays == cam.n_pixels
        np.testing.assert_allclose(np.linalg.norm(bundle.directions, axis=1), 1.0)

    def test_rays_originate_at_camera_center(self):
        cam = _camera()
        bundle = cam.all_rays()
        np.testing.assert_allclose(
            bundle.origins, np.tile(cam.pose[:3, 3], (bundle.n_rays, 1)))

    def test_center_pixel_looks_forward(self):
        cam = _camera(width=9, height=9)
        bundle = cam.rays_for_pixels(np.array([4]), np.array([4]))
        forward = -cam.pose[:3, 2]
        assert np.dot(bundle.directions[0], forward) > 0.99

    def test_invalid_camera_raises(self):
        with pytest.raises(ValueError):
            PinholeCamera(width=0, height=4, focal=5.0, pose=np.eye(4))
        with pytest.raises(ValueError):
            PinholeCamera(width=4, height=4, focal=5.0, pose=np.eye(3))

    def test_ray_bundle_validation(self):
        with pytest.raises(ValueError):
            RayBundle(origins=np.zeros((2, 3)), directions=np.zeros((3, 3)),
                      near=0.1, far=1.0)
        with pytest.raises(ValueError):
            RayBundle(origins=np.zeros((2, 3)), directions=np.zeros((2, 3)),
                      near=1.0, far=0.5)


class TestSamplePixelBatch:
    def test_shapes_and_targets_match_images(self):
        cam = _camera()
        image = new_rng(0).uniform(size=(cam.height, cam.width, 3))
        bundle, targets = sample_pixel_batch([cam], [image], batch_size=32,
                                             rng=new_rng(1))
        assert bundle.n_rays == 32 and targets.shape == (32, 3)
        assert np.all((targets >= 0.0) & (targets <= 1.0))

    def test_multiple_views_are_sampled(self):
        cams = [_camera(), _camera()]
        images = [np.zeros((6, 8, 3)), np.ones((6, 8, 3))]
        _bundle, targets = sample_pixel_batch(cams, images, batch_size=200,
                                              rng=new_rng(2))
        assert np.any(targets == 0.0) and np.any(targets == 1.0)

    def test_empty_inputs_raise(self):
        with pytest.raises(ValueError):
            sample_pixel_batch([], [], batch_size=4, rng=new_rng(0))


class TestStratifiedSamples:
    def test_samples_within_bounds_and_sorted(self):
        bundle = _camera().all_rays()
        t_vals, deltas = stratified_samples(bundle, 16, rng=new_rng(0))
        assert t_vals.shape == (bundle.n_rays, 16)
        assert np.all(t_vals >= bundle.near) and np.all(t_vals <= bundle.far)
        assert np.all(np.diff(t_vals, axis=1) > 0)
        assert np.all(deltas > 0)

    def test_deterministic_without_rng(self):
        bundle = _camera().all_rays()
        a, _ = stratified_samples(bundle, 8, rng=None)
        b, _ = stratified_samples(bundle, 8, rng=None)
        np.testing.assert_array_equal(a, b)

    def test_ray_points_shapes(self):
        bundle = _camera().all_rays()
        t_vals, _ = stratified_samples(bundle, 4, rng=None)
        points, dirs = ray_points(bundle, t_vals)
        assert points.shape == (bundle.n_rays * 4, 3)
        assert dirs.shape == points.shape

    def test_ray_points_lie_on_rays(self):
        bundle = _camera().all_rays()
        t_vals, _ = stratified_samples(bundle, 3, rng=None)
        points, _ = ray_points(bundle, t_vals)
        first = points[0]
        expected = bundle.origins[0] + t_vals[0, 0] * bundle.directions[0]
        np.testing.assert_allclose(first, expected)

    def test_normalize_points_to_unit_cube(self):
        pts = np.array([[-1.0, 0.0, 1.0], [2.0, -2.0, 0.0]])
        unit = normalize_points_to_unit_cube(pts, scene_bound=1.0)
        assert np.all(unit >= 0.0) and np.all(unit <= 1.0)
        np.testing.assert_allclose(unit[0], [0.0, 0.5, 1.0])

    def test_interior_deltas_floored_when_jitter_hits_bin_edges(self):
        """Regression: jitter landing on adjacent bin edges used to emit
        zero-width interior deltas (only the last delta was floored)."""

        class _EdgeJitter:
            def uniform(self, low, high, size):
                jitter = np.zeros(size)
                jitter[:, 0::2] = 1.0     # bin k at its upper edge,
                return jitter             # bin k+1 at its lower edge

        bundle = _camera().all_rays()
        t_vals, deltas = stratified_samples(bundle, 6, rng=_EdgeJitter())
        raw = np.diff(t_vals, axis=1)
        assert np.any(raw == 0.0)         # the degenerate case actually occurs
        assert np.all(deltas >= 1e-6)

    def test_single_sample_per_ray(self):
        bundle = _camera().all_rays()

        class _FarEdgeJitter:
            def uniform(self, low, high, size):
                return np.ones(size)      # sample lands exactly on ``far``

        t_vals, deltas = stratified_samples(bundle, 1, rng=_FarEdgeJitter())
        assert t_vals.shape == (bundle.n_rays, 1)
        assert deltas.shape == (bundle.n_rays, 1)
        np.testing.assert_allclose(t_vals[:, 0], bundle.far)
        np.testing.assert_allclose(deltas, 1e-6)
        # Deterministic midpoint variant stays positive as well.
        _, mid_deltas = stratified_samples(bundle, 1, rng=None)
        assert np.all(mid_deltas > 0.0)


class TestVolumeRenderer:
    def _random_inputs(self, n_rays=4, n_samples=8, seed=0):
        rng = new_rng(seed)
        sigmas = rng.uniform(0.0, 5.0, size=(n_rays, n_samples))
        rgbs = rng.uniform(size=(n_rays, n_samples, 3))
        t_vals = np.sort(rng.uniform(0.1, 2.0, size=(n_rays, n_samples)), axis=1)
        deltas = np.diff(t_vals, axis=1)
        deltas = np.concatenate([deltas, np.full((n_rays, 1), 0.05)], axis=1)
        return sigmas, rgbs, deltas, t_vals

    def test_weights_are_valid_distribution(self):
        renderer = VolumeRenderer(white_background=False)
        sigmas, rgbs, deltas, t_vals = self._random_inputs()
        out = renderer.forward(sigmas, rgbs, deltas, t_vals)
        assert np.all(out.weights >= 0.0)
        assert np.all(out.accumulation <= 1.0 + 1e-9)

    def test_empty_space_renders_background(self):
        renderer = VolumeRenderer(white_background=True)
        n_rays, n_samples = 3, 6
        out = renderer.forward(np.zeros((n_rays, n_samples)),
                               np.zeros((n_rays, n_samples, 3)),
                               np.full((n_rays, n_samples), 0.1),
                               np.linspace(0.1, 1.0, n_samples)[None, :].repeat(n_rays, 0))
        np.testing.assert_allclose(out.colors, 1.0)

    def test_opaque_first_sample_dominates(self):
        renderer = VolumeRenderer(white_background=False)
        sigmas = np.array([[1000.0, 1000.0]])
        rgbs = np.array([[[1.0, 0.0, 0.0], [0.0, 1.0, 0.0]]])
        deltas = np.array([[0.5, 0.5]])
        t_vals = np.array([[0.5, 1.0]])
        out = renderer.forward(sigmas, rgbs, deltas, t_vals)
        np.testing.assert_allclose(out.colors, [[1.0, 0.0, 0.0]], atol=1e-6)
        assert np.isclose(out.depth[0], 0.5, atol=1e-3)

    @pytest.mark.parametrize("white_background", [False, True])
    def test_backward_matches_numerical(self, white_background):
        renderer = VolumeRenderer(white_background=white_background)
        sigmas, rgbs, deltas, t_vals = self._random_inputs(n_rays=2, n_samples=5, seed=3)
        target = new_rng(4).uniform(size=(2, 3))

        def loss_from_sigmas(s):
            fresh = VolumeRenderer(white_background=white_background)
            out = fresh.forward(s, rgbs, deltas, t_vals)
            return float(np.sum((out.colors - target) ** 2))

        def loss_from_rgbs(c):
            fresh = VolumeRenderer(white_background=white_background)
            out = fresh.forward(sigmas, c.reshape(rgbs.shape), deltas, t_vals)
            return float(np.sum((out.colors - target) ** 2))

        out = renderer.forward(sigmas, rgbs, deltas, t_vals)
        grad_colors = 2.0 * (out.colors - target)
        grad_sigmas, grad_rgbs = renderer.backward(grad_colors)
        num_sigma = numerical_gradient(loss_from_sigmas, sigmas.copy())
        num_rgb = numerical_gradient(loss_from_rgbs, rgbs.copy().reshape(-1)).reshape(rgbs.shape)
        np.testing.assert_allclose(grad_sigmas, num_sigma, rtol=1e-3, atol=1e-5)
        np.testing.assert_allclose(grad_rgbs, num_rgb, rtol=1e-3, atol=1e-5)

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            VolumeRenderer().backward(np.zeros((1, 3)))

    def test_shape_validation(self):
        renderer = VolumeRenderer()
        with pytest.raises(ValueError):
            renderer.forward(np.zeros((2, 3)), np.zeros((2, 3, 3)),
                             np.zeros((2, 4)), np.zeros((2, 3)))


class TestLossesAndEncodings:
    def test_mse_loss_and_gradient(self):
        pred = np.array([[0.5, 0.5, 0.5]])
        target = np.array([[1.0, 0.0, 0.5]])
        loss, grad = mse_loss(pred, target)
        assert np.isclose(loss, (0.25 + 0.25) / 3)
        numeric = numerical_gradient(lambda p: mse_loss(p, target)[0], pred.copy())
        np.testing.assert_allclose(grad, numeric, rtol=1e-4, atol=1e-6)

    def test_psnr_perfect_and_noisy(self):
        img = new_rng(0).uniform(size=(4, 4, 3))
        assert psnr(img, img) > 100.0
        assert psnr(img, np.clip(img + 0.1, 0, 1)) < psnr(img, img)

    def test_mse_to_psnr_monotonic(self):
        assert mse_to_psnr(0.01) > mse_to_psnr(0.1)

    def test_positional_encoding_dim(self):
        x = np.zeros((5, 3))
        out = positional_encoding(x, n_frequencies=4)
        assert out.shape == (5, positional_encoding_dim(3, 4))

    def test_positional_encoding_zero_freq(self):
        x = np.ones((2, 3))
        out = positional_encoding(x, n_frequencies=0)
        np.testing.assert_allclose(out, x)

    @pytest.mark.parametrize("degree", [1, 2, 3, 4])
    def test_spherical_harmonics_dim(self, degree):
        dirs = new_rng(degree).normal(size=(7, 3))
        out = spherical_harmonics_encoding(dirs, degree=degree)
        assert out.shape == (7, spherical_harmonics_dim(degree))
        assert np.all(np.isfinite(out))

    def test_spherical_harmonics_rotation_invariance_of_l0(self):
        dirs = new_rng(9).normal(size=(10, 3))
        out = spherical_harmonics_encoding(dirs, degree=2)
        np.testing.assert_allclose(out[:, 0], 0.28209479177387814)


class TestVanillaNeRF:
    def test_query_shapes(self):
        model = VanillaNeRF(VanillaNeRFConfig(), rng=new_rng(0))
        points = new_rng(1).uniform(size=(11, 3))
        dirs = new_rng(2).normal(size=(11, 3))
        sigma, rgb = model.query(points, dirs)
        assert sigma.shape == (11,)
        assert rgb.shape == (11, 3)
        assert np.all(sigma >= 0.0)
        assert np.all((rgb >= 0.0) & (rgb <= 1.0))

    def test_backward_populates_gradients(self):
        model = VanillaNeRF(VanillaNeRFConfig(), rng=new_rng(0))
        points = new_rng(1).uniform(size=(6, 3))
        dirs = new_rng(2).normal(size=(6, 3))
        sigma, rgb = model.query(points, dirs)
        model.zero_grad()
        model.backward(np.ones_like(sigma), np.ones_like(rgb))
        assert any(np.any(p.grad != 0.0) for p in model.parameters())

    def test_paper_scale_flops_are_about_one_mflop(self):
        model = VanillaNeRF(VanillaNeRFConfig.paper_scale(), rng=new_rng(0))
        assert 0.5e6 < model.flops_per_query < 2.5e6

    def test_small_config_is_much_cheaper(self):
        small = VanillaNeRF(VanillaNeRFConfig(), rng=new_rng(0))
        big = VanillaNeRF(VanillaNeRFConfig.paper_scale(), rng=new_rng(0))
        assert small.flops_per_query < big.flops_per_query / 10
