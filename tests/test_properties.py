"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.accelerator.bum import BackPropUpdateMerger
from repro.accelerator.sram import SRAMBankArray
from repro.core.schedule import UpdateSchedule
from repro.grid.hash_function import spatial_hash
from repro.grid.interpolation import interpolate, trilinear_weights
from repro.nerf.losses import mse_loss, mse_to_psnr
from repro.nerf.volume_rendering import VolumeRenderer


# ---------------------------------------------------------------------------
# Spatial hash (Eq. 3)
# ---------------------------------------------------------------------------
@given(
    coords=arrays(np.int64, (20, 3), elements=st.integers(min_value=0, max_value=2**20)),
    table_size=st.integers(min_value=1, max_value=2**20),
)
@settings(max_examples=50, deadline=None)
def test_spatial_hash_always_in_range(coords, table_size):
    h = spatial_hash(coords, table_size)
    assert np.all(h >= 0) and np.all(h < table_size)


@given(
    x=st.integers(min_value=0, max_value=2**16),
    y=st.integers(min_value=0, max_value=2**16),
    z=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=50, deadline=None)
def test_spatial_hash_deterministic(x, y, z):
    coords = np.array([[x, y, z]])
    assert spatial_hash(coords, 4096)[0] == spatial_hash(coords, 4096)[0]


# ---------------------------------------------------------------------------
# Trilinear interpolation
# ---------------------------------------------------------------------------
@given(frac=arrays(np.float64, (10, 3), elements=st.floats(0.0, 1.0)))
@settings(max_examples=50, deadline=None)
def test_trilinear_weights_are_a_partition_of_unity(frac):
    w = trilinear_weights(frac)
    assert np.all(w >= -1e-12)
    np.testing.assert_allclose(w.sum(axis=1), 1.0, atol=1e-9)


@given(
    frac=arrays(np.float64, (6, 3), elements=st.floats(0.0, 1.0)),
    value=st.floats(min_value=-10.0, max_value=10.0),
)
@settings(max_examples=50, deadline=None)
def test_interpolating_constant_field_returns_constant(frac, value):
    weights = trilinear_weights(frac)
    corner_values = np.full((6, 8, 2), value)
    out = interpolate(corner_values, weights)
    np.testing.assert_allclose(out, value, atol=1e-9)


# ---------------------------------------------------------------------------
# Volume rendering (Eq. 1)
# ---------------------------------------------------------------------------
@given(
    sigmas=arrays(np.float64, (4, 6), elements=st.floats(0.0, 50.0)),
    rgbs=arrays(np.float64, (4, 6, 3), elements=st.floats(0.0, 1.0)),
)
@settings(max_examples=40, deadline=None)
def test_volume_rendering_output_bounded(sigmas, rgbs):
    t_vals = np.tile(np.linspace(0.1, 1.0, 6), (4, 1))
    deltas = np.full((4, 6), 0.15)
    out = VolumeRenderer(white_background=True).forward(sigmas, rgbs, deltas, t_vals)
    assert np.all(out.colors >= -1e-9)
    assert np.all(out.colors <= 1.0 + 1e-9)
    assert np.all(out.weights >= -1e-12)
    assert np.all(out.accumulation <= 1.0 + 1e-9)


@given(sigmas=arrays(np.float64, (3, 5), elements=st.floats(0.0, 20.0)))
@settings(max_examples=40, deadline=None)
def test_transmittance_is_monotone_non_increasing(sigmas):
    rgbs = np.ones((3, 5, 3)) * 0.5
    t_vals = np.tile(np.linspace(0.1, 1.0, 5), (3, 1))
    deltas = np.full((3, 5), 0.2)
    out = VolumeRenderer(white_background=False).forward(sigmas, rgbs, deltas, t_vals)
    assert np.all(np.diff(out.transmittance, axis=1) <= 1e-12)


# ---------------------------------------------------------------------------
# Losses
# ---------------------------------------------------------------------------
@given(
    pred=arrays(np.float64, (5, 3), elements=st.floats(0.0, 1.0)),
    target=arrays(np.float64, (5, 3), elements=st.floats(0.0, 1.0)),
)
@settings(max_examples=50, deadline=None)
def test_mse_loss_non_negative_and_zero_iff_equal(pred, target):
    loss, grad = mse_loss(pred, target)
    assert loss >= 0.0
    assert grad.shape == pred.shape
    loss_same, _ = mse_loss(pred, pred)
    assert loss_same == 0.0


@given(mse=st.floats(min_value=1e-9, max_value=1.0))
@settings(max_examples=50, deadline=None)
def test_psnr_monotone_in_mse(mse):
    assert mse_to_psnr(mse) <= mse_to_psnr(mse / 2.0) + 1e-9


# ---------------------------------------------------------------------------
# Update schedules
# ---------------------------------------------------------------------------
@given(
    freq=st.floats(min_value=0.05, max_value=1.0),
    n=st.integers(min_value=1, max_value=400),
)
@settings(max_examples=50, deadline=None)
def test_schedule_update_count_matches_frequency(freq, n):
    schedule = UpdateSchedule(freq)
    updates = schedule.updates_in(n)
    # floor((i+1)f) - floor(if) summed telescopes to floor(nf).
    assert updates == int(np.floor(n * freq + 1e-9)) or updates == int(np.floor(n * freq))


# ---------------------------------------------------------------------------
# Accelerator components
# ---------------------------------------------------------------------------
@given(
    addresses=arrays(np.int64, st.integers(1, 300),
                     elements=st.integers(min_value=0, max_value=63)),
    entries=st.integers(min_value=1, max_value=32),
    timeout=st.integers(min_value=1, max_value=32),
)
@settings(max_examples=50, deadline=None)
def test_bum_write_count_bounds(addresses, entries, timeout):
    result = BackPropUpdateMerger(n_entries=entries, timeout_cycles=timeout).process(addresses)
    n_unique = len(np.unique(addresses))
    assert n_unique <= result.n_sram_writes <= result.n_updates
    assert result.n_merged == result.n_updates - result.n_sram_writes


@given(
    addresses=arrays(np.int64, st.integers(1, 200),
                     elements=st.integers(min_value=0, max_value=1023)),
    n_banks=st.sampled_from([4, 8, 16, 32]),
)
@settings(max_examples=50, deadline=None)
def test_sram_batch_cycles_bounded_by_batch_size(addresses, n_banks):
    sram = SRAMBankArray(n_banks=n_banks, table_entries=1024)
    cycles = sram.cycles_for_batch(addresses)
    assert 1 <= cycles <= addresses.size
