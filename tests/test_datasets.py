"""Tests for the analytic scenes, ground-truth renderer and dataset suites."""

import numpy as np
import pytest

from repro.datasets import (
    AnalyticScene,
    Box,
    Cylinder,
    DatasetValidationError,
    validate_dataset,
    validate_view,
    GroundPlane,
    GroundTruthRenderer,
    NERF_SYNTHETIC_SCENES,
    SCANNET_SCENES,
    SILVR_SCENES,
    Sphere,
    build_dataset,
    make_scannet_scene,
    make_silvr_scene,
    make_synthetic_scene,
    nerf_synthetic_like,
    scannet_like,
    silvr_like,
)
from repro.datasets.scene import checker_color, gradient_color
from repro.nerf.cameras import PinholeCamera
from repro.utils.math3d import look_at_pose


class TestPrimitives:
    def test_sphere_density_inside_outside(self):
        sphere = Sphere(center=(0, 0, 0), radius=0.5, density=40.0)
        inside = sphere.density_at(np.array([[0.0, 0.0, 0.0]]))
        outside = sphere.density_at(np.array([[2.0, 0.0, 0.0]]))
        assert inside[0] > 0.9 * 40.0
        assert outside[0] < 1e-3

    def test_box_signed_distance_signs(self):
        box = Box(center=(0, 0, 0), half_extents=(1, 1, 1))
        assert box.signed_distance(np.array([[0.0, 0.0, 0.0]]))[0] < 0
        assert box.signed_distance(np.array([[2.0, 0.0, 0.0]]))[0] > 0

    def test_cylinder_contains_axis_point(self):
        cyl = Cylinder(center=(0, 0, 0), radius=0.3, half_height=0.5)
        assert cyl.density_at(np.array([[0.0, 0.0, 0.2]]))[0] > 1.0
        assert cyl.density_at(np.array([[0.0, 0.0, 1.0]]))[0] < 1e-2

    def test_ground_plane_slab(self):
        plane = GroundPlane(height=0.0, thickness=0.2)
        assert plane.density_at(np.array([[0.0, 0.0, -0.1]]))[0] > 1.0
        assert plane.density_at(np.array([[0.0, 0.0, 0.5]]))[0] < 1e-2
        assert plane.density_at(np.array([[0.0, 0.0, -0.5]]))[0] < 1e-2

    def test_invalid_primitives_raise(self):
        with pytest.raises(ValueError):
            Sphere(center=(0, 0, 0), radius=-1.0)
        with pytest.raises(ValueError):
            Box(center=(0, 0, 0), half_extents=(0, 1, 1))
        with pytest.raises(ValueError):
            Sphere(center=(0, 0, 0), radius=1.0, density=0.0)

    def test_color_functions(self):
        checker = checker_color((1, 1, 1), (0, 0, 0), scale=1.0)
        grad = gradient_color((0, 0, 0), (1, 1, 1), axis=2, low=0.0, high=1.0)
        pts = np.array([[0.1, 0.1, 0.0], [1.1, 0.1, 1.0]])
        c = checker(pts)
        g = grad(pts)
        assert c.shape == (2, 3) and g.shape == (2, 3)
        assert not np.allclose(c[0], c[1])
        np.testing.assert_allclose(g[0], 0.0)
        np.testing.assert_allclose(g[1], 1.0)


class TestAnalyticScene:
    def test_empty_scene_is_vacuum(self):
        scene = AnalyticScene(name="empty")
        pts = np.zeros((4, 3))
        np.testing.assert_allclose(scene.density_at(pts), 0.0)
        np.testing.assert_allclose(scene.color_at(pts), 0.0)

    def test_color_blend_is_density_weighted(self):
        scene = AnalyticScene(name="two")
        scene.add(Sphere(center=(0, 0, 0), radius=0.5, color=(1.0, 0.0, 0.0)))
        scene.add(Sphere(center=(2, 0, 0), radius=0.5, color=(0.0, 1.0, 0.0)))
        color = scene.color_at(np.array([[0.0, 0.0, 0.0]]))
        np.testing.assert_allclose(color, [[1.0, 0.0, 0.0]], atol=1e-3)

    def test_query_interface(self):
        scene = make_synthetic_scene("mic")
        sigma, rgb = scene.query(np.zeros((3, 3)), np.ones((3, 3)))
        assert sigma.shape == (3,)
        assert rgb.shape == (3, 3)

    def test_invalid_scene_bound(self):
        with pytest.raises(ValueError):
            AnalyticScene(name="bad", scene_bound=0.0)


class TestSceneBuilders:
    @pytest.mark.parametrize("name", NERF_SYNTHETIC_SCENES)
    def test_all_synthetic_scenes_build_and_have_content(self, name):
        scene = make_synthetic_scene(name)
        assert scene.name == name
        assert scene.n_primitives >= 3
        # Every scene should have some occupied volume near the origin region.
        probe = np.random.default_rng(0).uniform(-0.6, 0.6, size=(500, 3))
        assert scene.density_at(probe).max() > 1.0

    @pytest.mark.parametrize("name", SILVR_SCENES)
    def test_silvr_scenes_are_large_volume(self, name):
        scene = make_silvr_scene(name)
        assert scene.scene_bound >= 2.0
        assert scene.n_primitives >= 3

    @pytest.mark.parametrize("name", SCANNET_SCENES)
    def test_scannet_scenes_have_room_shell(self, name):
        scene = make_scannet_scene(name)
        # Floor should be occupied near the bottom of the room.
        assert scene.density_at(np.array([[0.0, 0.0, -1.4]]))[0] > 1.0

    def test_unknown_scene_names_raise(self):
        with pytest.raises(ValueError):
            make_synthetic_scene("nonexistent")
        with pytest.raises(ValueError):
            make_silvr_scene("nonexistent")
        with pytest.raises(ValueError):
            make_scannet_scene("nonexistent")


class TestGroundTruthRenderer:
    def test_rendering_produces_object_and_background(self):
        scene = AnalyticScene(name="ball")
        scene.add(Sphere(center=(0, 0, 0), radius=0.4, color=(1.0, 0.0, 0.0)))
        camera = PinholeCamera(
            width=16, height=16, focal=18.0,
            pose=look_at_pose(eye=[0.0, -2.0, 0.3], target=[0.0, 0.0, 0.0]),
            near=0.5, far=4.0,
        )
        rgb, depth = GroundTruthRenderer(n_samples=96).render(scene, camera)
        assert rgb.shape == (16, 16, 3) and depth.shape == (16, 16)
        center = rgb[8, 8]
        corner = rgb[0, 0]
        assert center[0] > 0.6 and center[1] < 0.4       # red object in the middle
        np.testing.assert_allclose(corner, 1.0, atol=1e-2)  # white background
        assert depth[8, 8] < depth[0, 0] + 1e-6 or depth[0, 0] == pytest.approx(0, abs=1e9)

    def test_invalid_settings_raise(self):
        with pytest.raises(ValueError):
            GroundTruthRenderer(n_samples=1)
        with pytest.raises(ValueError):
            GroundTruthRenderer(chunk_size=0)


class TestDatasetBuilders:
    def test_tiny_dataset_fixture(self, tiny_dataset):
        assert tiny_dataset.n_train_views == 4
        assert tiny_dataset.n_test_views == 2
        view = tiny_dataset.train_views[0]
        assert view.rgb.shape == (20, 20, 3)
        assert np.all((view.rgb >= 0.0) & (view.rgb <= 1.0))
        assert tiny_dataset.suite == "nerf_synthetic"

    def test_build_dataset_deterministic(self):
        scene = make_synthetic_scene("mic")
        a = build_dataset(scene, n_train_views=2, n_test_views=1, image_size=12,
                          seed=3, gt_samples=32)
        b = build_dataset(scene, n_train_views=2, n_test_views=1, image_size=12,
                          seed=3, gt_samples=32)
        np.testing.assert_allclose(a.train_views[0].rgb, b.train_views[0].rgb)

    def test_nerf_synthetic_like_subset(self):
        datasets = nerf_synthetic_like(["chair"], n_train_views=2, n_test_views=1,
                                       image_size=12)
        assert len(datasets) == 1 and datasets[0].name == "chair"

    def test_scannet_like_interior_cameras(self):
        datasets = scannet_like(["scene0000_office"], n_train_views=2, n_test_views=1,
                                image_size=12)
        dataset = datasets[0]
        # Interior rig: camera centres lie well inside the room bound.
        for view in dataset.train_views:
            assert np.linalg.norm(view.camera.pose[:3, 3]) < dataset.scene_bound

    def test_invalid_split_sizes_raise(self):
        scene = make_synthetic_scene("chair")
        with pytest.raises(ValueError):
            build_dataset(scene, n_train_views=0, n_test_views=1, image_size=8)


# -- loader contracts (scannet.py / silvr.py) ---------------------------------
#
# Rendered once per module at tiny scale; the tests below assert the shape,
# intrinsics and ray-direction contracts the trainer relies on.

_LOADER_IMAGE_SIZE = 16


@pytest.fixture(scope="module")
def scannet_dataset():
    (dataset,) = scannet_like(["scene0001_bedroom"], n_train_views=3,
                              n_test_views=2, image_size=_LOADER_IMAGE_SIZE,
                              seed=0)
    return dataset


@pytest.fixture(scope="module")
def silvr_dataset():
    (dataset,) = silvr_like(["garden"], n_train_views=3, n_test_views=2,
                            image_size=_LOADER_IMAGE_SIZE, seed=0)
    return dataset


def _assert_view_shapes(dataset, image_size):
    for view in dataset.train_views + dataset.test_views:
        assert view.rgb.shape == (image_size, image_size, 3)
        assert view.depth.shape == (image_size, image_size)
        assert np.all((view.rgb >= 0.0) & (view.rgb <= 1.0))
        assert view.camera.width == view.camera.height == image_size


def _assert_ray_contracts(dataset):
    for view in dataset.train_views:
        camera = view.camera
        bundle = camera.all_rays()
        assert bundle.n_rays == camera.n_pixels
        assert bundle.near == camera.near and bundle.far == camera.far
        # Unit-length directions, all originating at the camera centre.
        np.testing.assert_allclose(
            np.linalg.norm(bundle.directions, axis=-1), 1.0, atol=1e-12)
        assert np.all(bundle.origins == camera.pose[:3, 3])
        # The centre-pixel ray points down the camera's -z axis.
        half = camera.width // 2
        center = camera.rays_for_pixels(np.array([half]), np.array([half]))
        optical_axis = -camera.pose[:3, 2]
        assert float(center.directions[0] @ optical_axis) > 0.99


class TestScannetLoader:
    def test_suite_and_split_sizes(self, scannet_dataset):
        assert scannet_dataset.suite == "scannet"
        assert scannet_dataset.name == "scene0001_bedroom"
        assert scannet_dataset.n_train_views == 3
        assert scannet_dataset.n_test_views == 2
        assert len(scannet_dataset.train_cameras) == 3
        assert len(scannet_dataset.train_images) == 3

    def test_view_shapes(self, scannet_dataset):
        _assert_view_shapes(scannet_dataset, _LOADER_IMAGE_SIZE)

    def test_intrinsics(self, scannet_dataset):
        bound = scannet_dataset.scene_bound
        for camera in scannet_dataset.train_cameras + scannet_dataset.test_cameras:
            assert camera.focal == pytest.approx(0.9 * _LOADER_IMAGE_SIZE)
            assert camera.near == pytest.approx(0.05)
            assert camera.far == pytest.approx(2.0 * bound * 1.8)

    def test_interior_camera_rig(self, scannet_dataset):
        # Interior rig: every camera centre sits inside the room bound.
        for camera in scannet_dataset.train_cameras + scannet_dataset.test_cameras:
            assert np.linalg.norm(camera.pose[:3, 3]) < scannet_dataset.scene_bound

    def test_ray_contracts(self, scannet_dataset):
        _assert_ray_contracts(scannet_dataset)

    def test_default_scene_list(self):
        assert SCANNET_SCENES == ("scene0000_office", "scene0001_bedroom",
                                  "scene0002_kitchen", "scene0003_lounge")

    def test_deterministic_in_seed(self):
        a = scannet_like(["scene0000_office"], n_train_views=1, n_test_views=1,
                         image_size=8, seed=7)[0]
        b = scannet_like(["scene0000_office"], n_train_views=1, n_test_views=1,
                         image_size=8, seed=7)[0]
        np.testing.assert_array_equal(a.train_views[0].rgb, b.train_views[0].rgb)
        np.testing.assert_array_equal(a.train_views[0].camera.pose,
                                      b.train_views[0].camera.pose)


class TestSilvrLoader:
    def test_suite_and_split_sizes(self, silvr_dataset):
        assert silvr_dataset.suite == "silvr"
        assert silvr_dataset.name == "garden"
        assert silvr_dataset.n_train_views == 3
        assert silvr_dataset.n_test_views == 2

    def test_view_shapes(self, silvr_dataset):
        _assert_view_shapes(silvr_dataset, _LOADER_IMAGE_SIZE)

    def test_large_volume_camera_radius(self, silvr_dataset):
        # silvr_like widens the rig to 1.9x the (>= 2.0) scene bound.
        bound = silvr_dataset.scene_bound
        assert bound >= 2.0
        for camera in silvr_dataset.train_cameras + silvr_dataset.test_cameras:
            assert np.linalg.norm(camera.pose[:3, 3]) == pytest.approx(1.9 * bound)

    def test_ray_contracts(self, silvr_dataset):
        _assert_ray_contracts(silvr_dataset)

    def test_default_scene_list(self):
        assert SILVR_SCENES == ("garden", "agora", "zen_garden")


class TestDatasetValidation:
    """Loader contract: malformed views fail loudly at load time.

    ``scannet_like`` / ``silvr_like`` route their rendered output through
    :func:`validate_dataset`, so a NaN pixel or sheared pose is rejected
    with a named view instead of surfacing as a NaN mid-training.
    """

    @pytest.fixture()
    def valid_dataset(self):
        return build_dataset(make_synthetic_scene("lego"), n_train_views=2,
                             n_test_views=1, image_size=8, seed=0,
                             gt_samples=16)

    def test_loaders_emit_valid_datasets(self, scannet_dataset,
                                         silvr_dataset):
        assert validate_dataset(scannet_dataset) is scannet_dataset
        assert validate_dataset(silvr_dataset) is silvr_dataset

    @pytest.mark.nonfinite
    def test_nan_pixel_rejected(self, valid_dataset):
        valid_dataset.train_views[1].rgb[3, 3, 0] = np.nan
        with pytest.raises(DatasetValidationError,
                           match=r"train view 1.*non-finite pixels"):
            validate_dataset(valid_dataset)

    @pytest.mark.nonfinite
    def test_nan_depth_rejected(self, valid_dataset):
        valid_dataset.test_views[0].depth[0, 0] = np.inf
        with pytest.raises(DatasetValidationError,
                           match=r"test view 0.*non-finite"):
            validate_dataset(valid_dataset)

    @pytest.mark.nonfinite
    def test_nan_pose_rejected(self, valid_dataset):
        view = valid_dataset.train_views[0]
        view.camera.pose[0, 3] = np.nan
        with pytest.raises(DatasetValidationError, match="pose"):
            validate_view(view)

    def test_bad_focal_rejected(self, valid_dataset):
        view = valid_dataset.train_views[0]
        view.camera.focal = 0.0
        with pytest.raises(DatasetValidationError, match="focal"):
            validate_view(view)

    def test_wrong_image_shape_rejected(self, valid_dataset):
        view = valid_dataset.train_views[0]
        view.rgb = view.rgb[:-1]
        with pytest.raises(DatasetValidationError, match="rgb shape"):
            validate_view(view)

    def test_sheared_pose_rejected(self, valid_dataset):
        # Scale one rotation column: the ray generator would re-normalize
        # the lengths, silently bending orientations — the validator must
        # reject the block itself.
        view = valid_dataset.train_views[0]
        view.camera.pose[:3, 0] *= 1.5
        with pytest.raises(DatasetValidationError, match="orthonormal"):
            validate_view(view)
