"""End-to-end integration tests spanning datasets, training, and the accelerator."""

import numpy as np
import pytest

from repro import Instant3DConfig, build_iteration_workload, train_scene
from repro.accelerator import (
    AcceleratorConfig,
    Instant3DAccelerator,
    XAVIER_NX,
    extract_training_trace,
)
from repro.accelerator.devices import EdgeGPUModel
from repro.core.model import DecoupledRadianceField
from repro.training.profiler import WorkloadScale


class TestEndToEndTraining:
    def test_instant3d_and_baseline_reach_similar_quality(self, tiny_dataset,
                                                          tiny_config,
                                                          baseline_tiny_config):
        """The decomposition maintains reconstruction quality (Tab. 4): the
        Instant-3D configuration stays within a small margin of the baseline
        while doing strictly less grid-update work."""
        baseline = train_scene(tiny_dataset, baseline_tiny_config, n_iterations=60, seed=0)
        instant3d = train_scene(tiny_dataset, tiny_config, n_iterations=60, seed=0)
        assert instant3d.color_updates < baseline.color_updates
        assert instant3d.rgb_psnr > baseline.rgb_psnr - 3.0
        # Both must have actually learned something.
        assert baseline.rgb_psnr > 10.0
        assert instant3d.rgb_psnr > 10.0

    def test_density_compression_hurts_more_than_color_compression(self, tiny_dataset,
                                                                    tiny_grid_config):
        """The paper's core sensitivity claim (Tab. 1): shrinking the *color*
        grid is safer than shrinking the density grid.  We verify the ordering
        of grid-update work here and quality in the benchmark harness (the
        tiny test budget is too noisy for a strict PSNR ordering)."""
        color_small = Instant3DConfig(
            grid=tiny_grid_config, color_size_ratio=0.25,
            batch_pixels=64, n_samples_per_ray=16,
            mlp_hidden_width=16, mlp_hidden_layers=1)
        density_small = Instant3DConfig(
            grid=tiny_grid_config.scaled(0.25), color_size_ratio=4.0 if False else 1.0,
            batch_pixels=64, n_samples_per_ray=16,
            mlp_hidden_width=16, mlp_hidden_layers=1)
        model_color_small = DecoupledRadianceField(color_small, seed=0)
        model_density_small = DecoupledRadianceField(density_small, seed=0)
        storage_color_small = model_color_small.branch_storage_bytes()
        storage_density_small = model_density_small.branch_storage_bytes()
        assert storage_color_small["color"] < storage_color_small["density"]
        assert storage_density_small["density"] < storage_color_small["density"]


class TestEndToEndCoDesign:
    def test_full_codesign_pipeline(self, tiny_dataset, tiny_config):
        """Replicates the Tab. 5 structure end to end at miniature scale:
        Instant-NGP on a GPU model, the Instant-3D algorithm on the same GPU
        model, and the Instant-3D algorithm on the accelerator simulator."""
        scale = WorkloadScale.paper_scale(n_iterations=256)
        gpu_baseline_wl = build_iteration_workload(
            Instant3DConfig.paper_scale_baseline(), scale)
        gpu_i3d_wl = build_iteration_workload(
            Instant3DConfig.paper_scale_baseline().with_ratios(
                color_size_ratio=0.25, color_update_freq=0.5), scale)
        acc_wl = build_iteration_workload(Instant3DConfig.paper_scale_instant3d(), scale)

        xavier = EdgeGPUModel(XAVIER_NX)
        t_ngp_gpu = xavier.estimate_training(gpu_baseline_wl).total_s
        t_i3d_gpu = xavier.estimate_training(gpu_i3d_wl).total_s

        model = DecoupledRadianceField(tiny_config, seed=0)
        trace = extract_training_trace(model, tiny_dataset, batch_pixels=32,
                                       samples_per_ray=8)
        accelerator = Instant3DAccelerator(AcceleratorConfig())
        t_i3d_acc = accelerator.estimate_training(acc_wl, trace=trace).total_s

        # Normalised-runtime ordering of Table 5.
        assert t_i3d_gpu < t_ngp_gpu
        assert t_i3d_acc < 0.5 * t_i3d_gpu
        normalized = [100.0, 100.0 * t_i3d_gpu / t_ngp_gpu, 100.0 * t_i3d_acc / t_ngp_gpu]
        assert normalized[0] > normalized[1] > normalized[2]

    def test_trace_extraction_consistent_with_training_config(self, tiny_dataset,
                                                              tiny_config):
        model = DecoupledRadianceField(tiny_config, seed=0)
        trace = extract_training_trace(model, tiny_dataset, batch_pixels=16,
                                       samples_per_ray=4)
        assert trace.n_points == 16 * 4
        expected = trace.n_points * 8 * tiny_config.grid.n_levels
        assert trace.branch("density").read_addresses.size == expected

    def test_public_api_quickstart_path(self, tiny_dataset):
        """The README quickstart path: default configs, train, inspect PSNR."""
        config = Instant3DConfig.instant_3d(batch_pixels=32, n_samples_per_ray=8,
                                            mlp_hidden_width=16, mlp_hidden_layers=1)
        result = train_scene(tiny_dataset, config, n_iterations=5, seed=0)
        assert result.n_iterations == 5
        assert np.isfinite(result.rgb_psnr)
