"""Tests for the coupled Instant-NGP reference model."""

import numpy as np
import pytest

from repro.core import CoupledInstantNGP, DecoupledRadianceField, Instant3DConfig
from repro.utils.seeding import new_rng


@pytest.fixture()
def coupled_model(baseline_tiny_config):
    return CoupledInstantNGP(baseline_tiny_config, seed=0, geo_feature_dim=7)


class TestCoupledInstantNGP:
    def test_query_shapes_and_ranges(self, coupled_model):
        points = new_rng(0).uniform(size=(17, 3))
        dirs = new_rng(1).normal(size=(17, 3))
        sigma, rgb = coupled_model.query(points, dirs)
        assert sigma.shape == (17,)
        assert rgb.shape == (17, 3)
        assert np.all(sigma >= 0.0)
        assert np.all((rgb >= 0.0) & (rgb <= 1.0))

    def test_backward_reaches_shared_grid(self, coupled_model):
        points = new_rng(2).uniform(size=(9, 3))
        dirs = new_rng(3).normal(size=(9, 3))
        sigma, rgb = coupled_model.query(points, dirs)
        coupled_model.zero_grad()
        coupled_model.backward(np.ones_like(sigma), np.ones_like(rgb))
        assert any(np.any(p.grad != 0.0) for p in coupled_model.grid.parameters())
        assert any(np.any(p.grad != 0.0) for p in coupled_model.color_mlp.parameters())

    def test_color_gradient_flows_into_grid_even_when_density_frozen(self, coupled_model):
        """The coupling the paper removes: color supervision still touches the
        shared grid, so skipping 'density' updates cannot skip grid work."""
        points = new_rng(4).uniform(size=(9, 3))
        dirs = new_rng(5).normal(size=(9, 3))
        sigma, rgb = coupled_model.query(points, dirs)
        coupled_model.zero_grad()
        coupled_model.backward(np.zeros_like(sigma), np.ones_like(rgb),
                               update_density=False, update_color=True)
        assert any(np.any(p.grad != 0.0) for p in coupled_model.grid.parameters())

    def test_decoupled_model_can_skip_grid_work(self, baseline_tiny_config):
        """Contrast with the Instant-3D model: skipping the color branch leaves
        the color grid untouched entirely."""
        model = DecoupledRadianceField(baseline_tiny_config, seed=0)
        points = new_rng(6).uniform(size=(9, 3))
        dirs = new_rng(7).normal(size=(9, 3))
        sigma, rgb = model.query(points, dirs)
        model.zero_grad()
        model.backward(np.ones_like(sigma), np.ones_like(rgb), update_color=False)
        assert all(np.all(p.grad == 0.0) for p in model.encoder.color_parameters())

    def test_single_grid_access_count(self, coupled_model, baseline_tiny_config):
        """The coupled model reads one grid per point; the decoupled model two."""
        decoupled = DecoupledRadianceField(baseline_tiny_config, seed=0)
        coupled_accesses = coupled_model.grid_accesses_per_point()
        decoupled_accesses = sum(decoupled.grid_accesses_per_point().values())
        assert coupled_accesses == 8 * baseline_tiny_config.grid.n_levels
        assert decoupled_accesses == 2 * coupled_accesses

    def test_backward_before_query_raises(self, baseline_tiny_config):
        model = CoupledInstantNGP(baseline_tiny_config, seed=1)
        with pytest.raises(RuntimeError):
            model.backward(np.zeros(3), np.zeros((3, 3)))

    def test_invalid_geo_feature_dim(self, baseline_tiny_config):
        with pytest.raises(ValueError):
            CoupledInstantNGP(baseline_tiny_config, geo_feature_dim=0)

    def test_training_signal_reduces_loss(self, coupled_model):
        """A few manual gradient steps on a fixed batch reduce the squared error."""
        from repro.nn.optim import Adam

        points = new_rng(8).uniform(size=(64, 3))
        dirs = new_rng(9).normal(size=(64, 3))
        target_rgb = new_rng(10).uniform(size=(64, 3))
        optimizer = Adam(coupled_model.parameters(), lr=5e-3)
        losses = []
        for _ in range(25):
            sigma, rgb = coupled_model.query(points, dirs)
            diff = rgb - target_rgb
            losses.append(float(np.mean(diff ** 2)))
            coupled_model.zero_grad()
            coupled_model.backward(np.zeros_like(sigma), 2.0 * diff / diff.size)
            optimizer.step()
        assert losses[-1] < losses[0]
