"""Shared fixtures for the test suite.

The heavy objects (rendered datasets, extracted memory traces) are built once
per session at deliberately tiny scale so the full suite stays fast while
still exercising the real code paths end to end.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.config import Instant3DConfig
from repro.core.model import DecoupledRadianceField
from repro.datasets import make_synthetic_scene
from repro.datasets.dataset import build_dataset
from repro.grid.hash_encoding import HashGridConfig
from repro.utils.seeding import new_rng

#: CI numerics leg: REPRO_STRICT_NUMERICS=1 runs every test under
#: ``np.errstate(invalid="raise", divide="raise")`` so silent invalid-value
#: arithmetic in the hot paths fails loudly instead of producing NaNs.
#: Tests that *deliberately* create non-finite values (the health-watchdog
#: suite, fault-injection drills) opt out with ``@pytest.mark.nonfinite``.
_STRICT_NUMERICS = os.environ.get("REPRO_STRICT_NUMERICS", "") not in ("", "0")


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "nonfinite: test deliberately produces NaN/inf values; excluded "
        "from the REPRO_STRICT_NUMERICS=1 errstate-raise leg")


@pytest.fixture(autouse=True)
def strict_numerics(request):
    if not _STRICT_NUMERICS or request.node.get_closest_marker("nonfinite"):
        yield
        return
    with np.errstate(invalid="raise", divide="raise"):
        yield


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return new_rng(1234)


@pytest.fixture(scope="session")
def tiny_grid_config() -> HashGridConfig:
    """A small multiresolution grid used across unit tests."""
    return HashGridConfig(
        n_levels=4,
        n_features_per_level=2,
        log2_hashmap_size=10,
        base_resolution=4,
        finest_resolution=32,
    )


@pytest.fixture(scope="session")
def tiny_config(tiny_grid_config) -> Instant3DConfig:
    """A reduced-scale Instant-3D configuration for fast training tests."""
    return Instant3DConfig.instant_3d(
        grid=tiny_grid_config,
        batch_pixels=64,
        n_samples_per_ray=16,
        mlp_hidden_width=16,
        mlp_hidden_layers=1,
    )


@pytest.fixture(scope="session")
def baseline_tiny_config(tiny_grid_config) -> Instant3DConfig:
    """The Instant-NGP-baseline counterpart of ``tiny_config``."""
    return Instant3DConfig.instant_ngp_baseline(
        grid=tiny_grid_config,
        batch_pixels=64,
        n_samples_per_ray=16,
        mlp_hidden_width=16,
        mlp_hidden_layers=1,
    )


@pytest.fixture(scope="session")
def tiny_dataset():
    """A tiny rendered dataset of the lego-like scene (built once per session)."""
    scene = make_synthetic_scene("lego")
    return build_dataset(scene, n_train_views=4, n_test_views=2, image_size=20,
                         seed=0, suite="nerf_synthetic", gt_samples=48)


@pytest.fixture(scope="session")
def tiny_model(tiny_config) -> DecoupledRadianceField:
    """An untrained model matching ``tiny_config`` (do not mutate in tests)."""
    return DecoupledRadianceField(tiny_config, seed=0)


@pytest.fixture(scope="session")
def tiny_trace(tiny_model, tiny_dataset):
    """A memory trace extracted from one query batch of the tiny model."""
    from repro.accelerator.trace import extract_training_trace

    return extract_training_trace(tiny_model, tiny_dataset,
                                  batch_pixels=32, samples_per_ray=8, seed=0)
