"""Tests for the pluggable ``ArrayBackend`` seam.

Four layers of coverage:

* registry behaviour — registration, lookup, the ``REPRO_BACKEND``
  process default, and config-level backend selection;
* per-primitive bit-identity — every registered backend's gather/scatter/
  reduction/ordering/RNG primitives against the raw numpy expressions the
  reference backend is defined by;
* gradcheck of the nn stack parametrized over every registered backend;
* 20-step training differentials — the ``numpy`` backend reproduces the
  frozen pre-backend reference trainer bit-exactly, and every other
  registered backend reproduces the ``numpy`` backend bit-exactly across
  dense/culled, float64/float32 and sparse-update configurations.

The CI backend matrix complements this file by re-running the *entire*
tier-1 suite under each backend via ``REPRO_BACKEND``.
"""

import dataclasses

import numpy as np
import pytest

from test_pipeline import _params_equal, _reference_dense_run

from repro.backend import (
    ArrayBackend,
    NumpyBackend,
    available_backends,
    default_backend_name,
    get_backend,
    materialize,
    register_backend,
    resolve_backend,
)
from repro.backend import registry as backend_registry
from repro.core.config import Instant3DConfig
from repro.core.model import DecoupledRadianceField
from repro.io import load_checkpoint, save_trainer_checkpoint
from repro.nn.gradcheck import numerical_gradient
from repro.nn.layers import Linear
from repro.nn.mlp import MLP
from repro.training.trainer import Trainer
from repro.utils.seeding import new_rng
from repro.utils.workspace import WorkspaceArena

#: Captured once: the backends registered in this environment.
BACKENDS = available_backends()
NON_NUMPY = tuple(name for name in BACKENDS if name != "numpy")


@pytest.fixture(params=BACKENDS)
def backend(request) -> ArrayBackend:
    return get_backend(request.param)


class TestRegistry:
    def test_reference_backend_is_first(self):
        assert BACKENDS[0] == "numpy"
        assert "numpy_fused" in BACKENDS

    def test_get_backend_returns_cached_singleton(self):
        assert get_backend("numpy") is get_backend("numpy")
        assert isinstance(get_backend("numpy"), NumpyBackend)

    def test_unknown_backend_raises_with_listing(self):
        with pytest.raises(ValueError, match="numpy"):
            get_backend("no_such_backend")

    def test_duplicate_registration_raises(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("numpy", NumpyBackend)

    def test_third_party_registration_roundtrip(self):
        class TracingBackend(NumpyBackend):
            name = "test_tracing"

        register_backend("test_tracing", TracingBackend)
        try:
            assert "test_tracing" in available_backends()
            assert isinstance(get_backend("test_tracing"), TracingBackend)
            config = Instant3DConfig(backend="test_tracing")
            assert isinstance(config.array_backend, TracingBackend)
        finally:
            backend_registry._FACTORIES.pop("test_tracing", None)
            backend_registry._INSTANCES.pop("test_tracing", None)

    def test_resolve_backend_normalisation(self):
        numpy_backend = get_backend("numpy")
        assert resolve_backend(None) is get_backend(default_backend_name())
        assert resolve_backend("numpy_fused") is get_backend("numpy_fused")
        assert resolve_backend(numpy_backend) is numpy_backend
        with pytest.raises(TypeError):
            resolve_backend(123)

    def test_env_var_selects_process_default(self, monkeypatch):
        monkeypatch.setenv(backend_registry.BACKEND_ENV_VAR, "numpy_fused")
        assert default_backend_name() == "numpy_fused"
        assert resolve_backend(None) is get_backend("numpy_fused")
        assert Instant3DConfig().backend == "numpy_fused"
        monkeypatch.delenv(backend_registry.BACKEND_ENV_VAR)
        assert default_backend_name() == "numpy"

    def test_config_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            Instant3DConfig(backend="no_such_backend")


class TestPrimitiveBitIdentity:
    """Each backend primitive vs the numpy expression that defines it."""

    def test_allocation(self, backend):
        e = backend.empty((3, 4), np.float32)
        z = backend.zeros((5,), np.float64)
        assert e.shape == (3, 4) and e.dtype == np.float32
        assert z.shape == (5,) and z.dtype == np.float64
        assert not z.any()
        converted = backend.asarray([1, 2, 3], dtype=np.float32)
        np.testing.assert_array_equal(backend.to_numpy(converted),
                                      np.asarray([1, 2, 3], np.float32))

    def test_make_arena(self, backend):
        arena = backend.make_arena()
        assert isinstance(arena, WorkspaceArena)
        buf = arena.buffer("x", (4, 2), np.float32)
        assert buf.shape == (4, 2) and buf.dtype == np.float32
        assert backend.is_native(buf)

    def test_gather_rows(self, backend):
        rng = new_rng(11)
        table = backend.asarray(rng.normal(size=(32, 2)), np.float32)
        rows = backend.asarray(rng.integers(0, 32, size=50), np.int64)
        expected = backend.to_numpy(table)[backend.to_numpy(rows)]
        np.testing.assert_array_equal(
            backend.to_numpy(backend.gather(table, rows)), expected)
        out = backend.empty((50, 2), np.float32)
        result = backend.gather(table, rows, out=out)
        assert result is out
        np.testing.assert_array_equal(backend.to_numpy(out), expected)

    def test_take_out_flat(self, backend):
        rng = new_rng(12)
        flat = backend.asarray(rng.normal(size=64), np.float32)
        idx = backend.asarray(rng.integers(0, 64, size=40), np.int64)
        out = backend.empty(40, np.float32)
        result = backend.take_out(flat, idx, out)
        assert result is out
        np.testing.assert_array_equal(
            backend.to_numpy(out),
            backend.to_numpy(flat)[backend.to_numpy(idx)])

    def test_scatter_add_accumulates_duplicates(self, backend):
        rng = new_rng(13)
        rows_np = rng.integers(0, 8, size=30)
        values_np = rng.normal(size=(30, 2)).astype(np.float32)
        expected = np.zeros((8, 2), np.float32)
        np.add.at(expected, rows_np, values_np)
        target = backend.zeros((8, 2), np.float32)
        backend.scatter_add(target, backend.asarray(rows_np, np.int64),
                            backend.asarray(values_np, np.float32))
        np.testing.assert_array_equal(backend.to_numpy(target), expected)

    def test_scatter_add_unique_rows(self, backend):
        rows_np = np.array([5, 1, 3], np.int64)
        values_np = np.array([[1.0], [2.0], [3.0]], np.float32)
        expected = np.zeros((6, 1), np.float32)
        expected[rows_np] += values_np
        target = backend.zeros((6, 1), np.float32)
        backend.scatter_add(target, backend.asarray(rows_np, np.int64),
                            backend.asarray(values_np, np.float32), unique=True)
        np.testing.assert_array_equal(backend.to_numpy(target), expected)

    def test_scatter_rows_assignment(self, backend):
        target = backend.zeros((6, 3), np.float64)
        rows = backend.asarray([4, 0, 2], np.int64)
        values = backend.asarray(np.arange(9, dtype=np.float64).reshape(3, 3))
        backend.scatter_rows(target, rows, values)
        expected = np.zeros((6, 3))
        expected[[4, 0, 2]] = np.arange(9, dtype=np.float64).reshape(3, 3)
        np.testing.assert_array_equal(backend.to_numpy(target), expected)

    def test_segment_sum_matches_bincount(self, backend):
        rng = new_rng(14)
        ids_np = rng.integers(0, 16, size=200)
        weights_np = rng.normal(size=200)
        expected = np.bincount(ids_np, weights=weights_np, minlength=16)
        result = backend.segment_sum(backend.asarray(weights_np, np.float64),
                                     backend.asarray(ids_np, np.int64), 16)
        np.testing.assert_array_equal(backend.to_numpy(result), expected)

    @pytest.mark.parametrize("acc_dtype", [np.float32, np.float64])
    def test_bincount_add_bit_identical(self, backend, acc_dtype):
        rng = new_rng(15)
        ids_np = rng.integers(0, 16, size=300)
        weights_np = rng.normal(size=300)
        acc_ref = rng.normal(size=16).astype(acc_dtype)
        acc = backend.asarray(acc_ref.copy(), acc_dtype)
        # The contract: identical to adding numpy's completed per-segment
        # sums (never individual contributions) into the accumulator.
        acc_ref += np.bincount(ids_np, weights=weights_np, minlength=16)
        backend.bincount_add(acc, backend.asarray(ids_np, np.int64),
                             backend.asarray(weights_np, np.float64), 16)
        np.testing.assert_array_equal(backend.to_numpy(acc), acc_ref)

    def test_matmul_and_einsum(self, backend):
        rng = new_rng(16)
        a_np = rng.normal(size=(5, 3)).astype(np.float32)
        b_np = rng.normal(size=(3, 4)).astype(np.float32)
        a = backend.asarray(a_np, np.float32)
        b = backend.asarray(b_np, np.float32)
        np.testing.assert_array_equal(backend.to_numpy(backend.matmul(a, b)),
                                      np.matmul(a_np, b_np))
        out = backend.empty((5, 4), np.float32)
        assert backend.matmul(a, b, out=out) is out
        np.testing.assert_array_equal(backend.to_numpy(out), np.matmul(a_np, b_np))
        w_np = rng.normal(size=(5, 3, 4)).astype(np.float32)
        w = backend.asarray(w_np, np.float32)
        np.testing.assert_array_equal(
            backend.to_numpy(backend.einsum("ns,nsc->nc", a, w)),
            np.einsum("ns,nsc->nc", a_np, w_np))

    def test_argsort_cumsum_flatnonzero(self, backend):
        rng = new_rng(17)
        perm_np = rng.permutation(64)
        x = backend.asarray(perm_np, np.int64)
        np.testing.assert_array_equal(backend.to_numpy(backend.argsort(x)),
                                      np.argsort(perm_np))
        v_np = rng.normal(size=(4, 6))
        v = backend.asarray(v_np, np.float64)
        np.testing.assert_array_equal(
            backend.to_numpy(backend.cumsum(v, axis=1)), np.cumsum(v_np, axis=1))
        out = backend.empty((4, 6), np.float64)
        backend.cumsum(v, axis=1, out=out)
        np.testing.assert_array_equal(backend.to_numpy(out), np.cumsum(v_np, axis=1))
        mask_np = rng.normal(size=30) > 0.3
        mask = backend.asarray(mask_np, np.bool_)
        np.testing.assert_array_equal(backend.to_numpy(backend.flatnonzero(mask)),
                                      np.flatnonzero(mask_np))

    def test_draw_uniform_shares_rng_stream(self, backend):
        """All backends must consume RNG streams identically to the reference."""
        reference = get_backend("numpy")
        expected = reference.draw_uniform(new_rng(99), np.empty((3, 7)))
        out = backend.empty((3, 7), np.float64)
        result = backend.draw_uniform(new_rng(99), out)
        assert result is out
        np.testing.assert_array_equal(backend.to_numpy(out), expected)
        assert float(backend.to_numpy(out).min()) >= 0.0
        assert float(backend.to_numpy(out).max()) < 1.0

    def test_capability_queries(self, backend):
        f32 = backend.asarray(np.zeros((2, 2)), np.float32)
        f64 = backend.asarray(np.zeros((2, 2)), np.float64)
        assert backend.is_native(f32) and backend.is_native(f64)
        assert backend.is_native_f32(f32)
        assert not backend.is_native_f32(f64)
        assert not backend.is_native_f32([1.0, 2.0])

    def test_flat_pair_view_contract(self, backend):
        pairs = backend.asarray(
            np.arange(8, dtype=np.float32).reshape(4, 2), np.float32)
        view = backend.flat_pair_view(pairs)
        if view is not None:        # capability, not an obligation
            assert view.shape == (4,)
            # Writing through the view must alias the original rows.
            view[1] = view[0]
            np.testing.assert_array_equal(backend.to_numpy(pairs)[1],
                                          backend.to_numpy(pairs)[0])
        # Shapes/dtypes outside the contract must be declined, not mangled.
        assert backend.flat_pair_view(
            backend.asarray(np.zeros((4, 3)), np.float32)) is None
        assert backend.flat_pair_view(
            backend.asarray(np.zeros((4, 2)), np.float64)) is None

    def test_host_roundtrip_and_materialize(self, backend):
        x_np = np.arange(6, dtype=np.float32).reshape(2, 3)
        native = backend.from_numpy(x_np)
        assert backend.is_native(native)
        np.testing.assert_array_equal(backend.to_numpy(native), x_np)
        roundtrip = materialize(native)
        assert isinstance(roundtrip, np.ndarray)
        np.testing.assert_array_equal(roundtrip, x_np)
        assert materialize("not-an-array") == "not-an-array"


class TestGradcheckAcrossBackends:
    """The hand-derived backward passes hold under every registered backend."""

    @pytest.mark.parametrize("name", BACKENDS)
    def test_linear_weight_gradient(self, name):
        rng = new_rng(3)
        layer = Linear(3, 2, rng=rng, backend=get_backend(name))
        x = rng.normal(size=(4, 3)).astype(np.float32)
        target = rng.normal(size=(4, 2)).astype(np.float32)

        def loss_for_weights(w):
            saved = layer.weight.data.copy()
            layer.weight.data = w.astype(np.float32)
            out = layer.forward(x)
            layer.weight.data = saved
            return float(np.sum((np.asarray(out) - target) ** 2))

        out = layer.forward(x)
        layer.backward(2.0 * (np.asarray(out) - target))
        numeric = numerical_gradient(loss_for_weights,
                                     layer.weight.data.astype(np.float64))
        np.testing.assert_allclose(layer.weight.grad, numeric,
                                   rtol=1e-2, atol=1e-2)

    @pytest.mark.parametrize("name", BACKENDS)
    def test_mlp_input_gradient(self, name):
        rng = new_rng(6)
        mlp = MLP(in_features=3, hidden_features=[8], out_features=2,
                  rng=rng, backend=get_backend(name))
        x = rng.normal(size=(4, 3)).astype(np.float32)

        def loss(xi):
            return float(np.sum(np.asarray(mlp.forward(xi)) ** 2))

        out = mlp.forward(x)
        grad_in = mlp.backward(2.0 * np.asarray(out))
        numeric = numerical_gradient(loss, x.astype(np.float64).copy())
        np.testing.assert_allclose(np.asarray(grad_in), numeric,
                                   rtol=1e-2, atol=1e-2)

    @pytest.mark.parametrize("name", NON_NUMPY)
    def test_linear_matches_numpy_backend_bitwise(self, name):
        x = new_rng(8).normal(size=(5, 4)).astype(np.float32)
        outputs = []
        for backend_name in ("numpy", name):
            layer = Linear(4, 3, rng=new_rng(2), backend=get_backend(backend_name))
            out = layer.forward(x)
            layer.backward(np.asarray(out))
            outputs.append((np.asarray(out).copy(), layer.weight.grad.copy()))
        np.testing.assert_array_equal(outputs[0][0], outputs[1][0])
        np.testing.assert_array_equal(outputs[0][1], outputs[1][1])


def _train_losses(config, dataset, n_steps=20, seed=0):
    model = DecoupledRadianceField(config, seed=seed)
    trainer = Trainer(model, dataset, config=config, seed=seed)
    return [trainer.train_step()["loss"] for _ in range(n_steps)], model, trainer


class TestTrainingDifferentials:
    """End-to-end 20-step traces across backends (the acceptance criterion)."""

    def test_numpy_backend_matches_frozen_reference(self, tiny_config,
                                                    tiny_dataset):
        """The default backend reproduces the pre-backend trainer bit-exactly."""
        config = dataclasses.replace(tiny_config, backend="numpy")
        ref_model, ref_losses = _reference_dense_run(tiny_dataset, config,
                                                     seed=0, n_steps=20)
        losses, model, _ = _train_losses(config, tiny_dataset)
        assert losses == ref_losses
        assert _params_equal(model, ref_model)

    @pytest.mark.parametrize("name", NON_NUMPY)
    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_backend_matches_numpy_dense(self, name, dtype, tiny_config,
                                         tiny_dataset):
        base = dataclasses.replace(tiny_config, compute_dtype=dtype)
        ref_losses, ref_model, _ = _train_losses(
            dataclasses.replace(base, backend="numpy"), tiny_dataset)
        losses, model, _ = _train_losses(
            dataclasses.replace(base, backend=name), tiny_dataset)
        assert losses == ref_losses
        assert _params_equal(model, ref_model)

    @pytest.mark.parametrize("name", NON_NUMPY)
    def test_backend_matches_numpy_culled(self, name, tiny_config,
                                          tiny_dataset):
        """The compaction path (flatnonzero/gather/scatter_rows) agrees too."""
        base = dataclasses.replace(tiny_config, culling_enabled=True,
                                   occupancy_warmup_iterations=4)
        ref_losses, ref_model, _ = _train_losses(
            dataclasses.replace(base, backend="numpy"), tiny_dataset)
        losses, model, _ = _train_losses(
            dataclasses.replace(base, backend=name), tiny_dataset)
        assert losses == ref_losses
        assert _params_equal(model, ref_model)

    @pytest.mark.parametrize("name", NON_NUMPY)
    def test_backend_matches_numpy_sparse_updates(self, name, tiny_config,
                                                  tiny_dataset):
        """Lazy-moment sparse optimiser updates agree across backends."""
        base = dataclasses.replace(tiny_config, sparse_updates=True)
        ref_losses, ref_model, _ = _train_losses(
            dataclasses.replace(base, backend="numpy"), tiny_dataset)
        losses, model, _ = _train_losses(
            dataclasses.replace(base, backend=name), tiny_dataset)
        assert losses == ref_losses
        assert _params_equal(model, ref_model)

    def test_checkpoint_records_backend(self, tiny_config, tiny_dataset,
                                        tmp_path):
        config = dataclasses.replace(tiny_config, backend=BACKENDS[-1])
        _, _, trainer = _train_losses(config, tiny_dataset, n_steps=2)
        path = save_trainer_checkpoint(tmp_path / "ckpt.npz", trainer)
        checkpoint = load_checkpoint(path, expected_kind="trainer")
        assert checkpoint.metadata["backend"] == BACKENDS[-1]
        # Every array leaf must have been materialised to host numpy.
        def assert_host(node):
            if isinstance(node, dict):
                for value in node.values():
                    assert_host(value)
            elif isinstance(node, list):
                for value in node:
                    assert_host(value)
            elif node is not None and not isinstance(node, (bool, int, float, str)):
                assert isinstance(node, np.ndarray)
        assert_host(checkpoint.payload)
