"""Tests for the multiresolution hash-grid encoding."""

import numpy as np
import pytest

from repro.grid import (
    CORNER_OFFSETS,
    HashGridConfig,
    MultiResHashGrid,
    PI2,
    PI3,
    dense_index,
    spatial_hash,
    trilinear_weights,
)
from repro.grid.interpolation import interpolate, interpolate_backward
from repro.nn.gradcheck import numerical_gradient
from repro.utils.seeding import new_rng


class TestSpatialHash:
    def test_range(self):
        coords = new_rng(0).integers(0, 1000, size=(100, 3))
        h = spatial_hash(coords, table_size=512)
        assert np.all(h >= 0) and np.all(h < 512)

    def test_deterministic(self):
        coords = np.array([[1, 2, 3], [4, 5, 6]])
        np.testing.assert_array_equal(spatial_hash(coords, 1024),
                                      spatial_hash(coords, 1024))

    def test_x_locality(self):
        """Differences along x translate directly into small address deltas."""
        table = 1 << 20
        a = spatial_hash(np.array([[100, 7, 9]]), table)[0]
        b = spatial_hash(np.array([[101, 7, 9]]), table)[0]
        assert abs(int(a) - int(b)) <= 1 or abs(abs(int(a) - int(b)) - table) <= 1

    def test_y_z_remoteness(self):
        """Differences along y or z are amplified by the large primes."""
        table = 1 << 20
        base = spatial_hash(np.array([[100, 7, 9]]), table)[0]
        y_next = spatial_hash(np.array([[100, 8, 9]]), table)[0]
        z_next = spatial_hash(np.array([[100, 7, 10]]), table)[0]
        assert abs(int(base) - int(y_next)) > 100
        assert abs(int(base) - int(z_next)) > 100

    def test_matches_reference_formula(self):
        coords = np.array([[3, 5, 7]])
        expected = (np.uint64(3) ^ (np.uint64(5) * PI2 & np.uint64(0xFFFFFFFF))
                    ^ (np.uint64(7) * PI3 & np.uint64(0xFFFFFFFF))) % np.uint64(997)
        assert spatial_hash(coords, 997)[0] == int(expected)

    def test_invalid_table_size(self):
        with pytest.raises(ValueError):
            spatial_hash(np.zeros((1, 3), dtype=int), 0)

    def test_negative_coordinates_rejected(self):
        """Regression: negative coordinates used to wrap through the uint64
        cast into valid-looking but wrong addresses."""
        with pytest.raises(ValueError, match="non-negative"):
            spatial_hash(np.array([[-1, 2, 3]]), 1024)
        with pytest.raises(ValueError):
            spatial_hash(np.array([[1, 2, 3], [4, -5, 6]]), 1024)
        with pytest.raises(ValueError):
            spatial_hash(np.array([[-1.0, 2.0, 3.0]]), 1024)   # float coords too

    def test_validate_opt_out_for_structurally_safe_callers(self):
        coords = np.array([[3, 5, 7]])
        np.testing.assert_array_equal(
            spatial_hash(coords, 997, validate=False), spatial_hash(coords, 997)
        )


class TestDenseIndex:
    def test_bijective_on_grid(self):
        res = 4
        coords = np.stack(np.meshgrid(*[np.arange(res + 1)] * 3, indexing="ij"),
                          axis=-1).reshape(-1, 3)
        idx = dense_index(coords, res)
        assert len(np.unique(idx)) == (res + 1) ** 3
        assert idx.min() == 0 and idx.max() == (res + 1) ** 3 - 1

    def test_x_is_fastest_axis(self):
        assert dense_index(np.array([1, 0, 0]), 4) - dense_index(np.array([0, 0, 0]), 4) == 1


class TestTrilinearWeights:
    def test_weights_sum_to_one(self):
        frac = new_rng(1).uniform(size=(50, 3))
        w = trilinear_weights(frac)
        np.testing.assert_allclose(w.sum(axis=1), 1.0, atol=1e-12)

    def test_corner_exactness(self):
        """At a corner, all weight concentrates on that corner."""
        for corner_idx, offset in enumerate(CORNER_OFFSETS):
            w = trilinear_weights(offset[None, :].astype(float))
            assert np.isclose(w[0, corner_idx], 1.0)
            assert np.isclose(w[0].sum(), 1.0)

    def test_center_is_uniform(self):
        w = trilinear_weights(np.full((1, 3), 0.5))
        np.testing.assert_allclose(w, 1.0 / 8.0)

    def test_interpolate_constant_field(self):
        values = np.ones((5, 8, 2)) * 3.0
        w = trilinear_weights(new_rng(2).uniform(size=(5, 3)))
        out = interpolate(values, w)
        np.testing.assert_allclose(out, 3.0)

    def test_interpolate_backward_shapes_and_values(self):
        w = trilinear_weights(np.full((2, 3), 0.5))
        grad = interpolate_backward(np.ones((2, 3)), w)
        assert grad.shape == (2, 8, 3)
        np.testing.assert_allclose(grad, 1.0 / 8.0)


class TestHashGridConfig:
    def test_per_level_scale(self, tiny_grid_config):
        cfg = tiny_grid_config
        assert cfg.level_resolution(0) == cfg.base_resolution
        assert cfg.level_resolution(cfg.n_levels - 1) <= cfg.finest_resolution
        assert cfg.per_level_scale > 1.0

    def test_scaled_reduces_entries(self, tiny_grid_config):
        scaled = tiny_grid_config.scaled(0.25)
        assert scaled.max_table_entries < tiny_grid_config.max_table_entries
        assert scaled.n_levels == tiny_grid_config.n_levels

    def test_invalid_configs_raise(self):
        with pytest.raises(ValueError):
            HashGridConfig(n_levels=0)
        with pytest.raises(ValueError):
            HashGridConfig(size_scale=0.0)
        with pytest.raises(ValueError):
            HashGridConfig(base_resolution=32, finest_resolution=16)


class TestMultiResHashGrid:
    def test_forward_shape(self, tiny_grid_config):
        grid = MultiResHashGrid(tiny_grid_config, rng=new_rng(0))
        points = new_rng(1).uniform(size=(17, 3))
        out = grid.forward(points)
        assert out.shape == (17, tiny_grid_config.n_output_features)

    def test_coarse_levels_are_dense(self, tiny_grid_config):
        grid = MultiResHashGrid(tiny_grid_config, rng=new_rng(0))
        assert grid.levels[0].is_dense
        assert grid.levels[0].table_size == (tiny_grid_config.base_resolution + 1) ** 3

    def test_access_record_populated(self, tiny_grid_config):
        grid = MultiResHashGrid(tiny_grid_config, rng=new_rng(0))
        points = new_rng(2).uniform(size=(9, 3))
        grid.forward(points)
        record = grid.last_access
        assert record is not None
        assert record.n_points == 9
        assert record.n_levels == tiny_grid_config.n_levels
        assert record.total_accesses() == 9 * 8 * tiny_grid_config.n_levels
        flat = record.flat_addresses()
        assert flat.size == record.total_accesses()
        assert flat.max() < grid.total_table_entries

    def test_backward_before_forward_raises(self, tiny_grid_config):
        grid = MultiResHashGrid(tiny_grid_config, rng=new_rng(0))
        with pytest.raises(RuntimeError):
            grid.backward(np.zeros((3, tiny_grid_config.n_output_features)))

    def test_backward_scatters_gradients(self, tiny_grid_config):
        grid = MultiResHashGrid(tiny_grid_config, rng=new_rng(0))
        points = new_rng(3).uniform(size=(5, 3))
        out = grid.forward(points)
        grid.backward(np.ones_like(out))
        assert any(np.any(level.table.grad != 0.0) for level in grid.levels)

    def test_backward_matches_numerical_for_single_level(self):
        config = HashGridConfig(n_levels=1, n_features_per_level=2,
                                log2_hashmap_size=8, base_resolution=4,
                                finest_resolution=4)
        grid = MultiResHashGrid(config, rng=new_rng(4))
        points = new_rng(5).uniform(0.1, 0.9, size=(3, 3))
        table = grid.levels[0].table

        def loss_for_table(t):
            saved = table.data.copy()
            table.data[...] = t.astype(np.float32)
            out = grid.forward(points)
            table.data[...] = saved
            return float(np.sum(out ** 2))

        out = grid.forward(points)
        grid.zero_grad()
        grid.backward(2.0 * out)
        numeric = numerical_gradient(loss_for_table, table.data.astype(np.float64))
        np.testing.assert_allclose(table.grad, numeric, rtol=2e-2, atol=2e-2)

    def test_points_outside_unit_cube_are_clamped(self, tiny_grid_config):
        grid = MultiResHashGrid(tiny_grid_config, rng=new_rng(0))
        out = grid.forward(np.array([[-0.5, 1.5, 0.5], [2.0, -1.0, 3.0]]))
        assert np.all(np.isfinite(out))

    def test_storage_and_access_accounting(self, tiny_grid_config):
        grid = MultiResHashGrid(tiny_grid_config, rng=new_rng(0))
        assert grid.storage_bytes == sum(l.storage_bytes for l in grid.levels)
        assert grid.accesses_per_point() == 8 * tiny_grid_config.n_levels

    def test_invalid_points_shape_raises(self, tiny_grid_config):
        grid = MultiResHashGrid(tiny_grid_config, rng=new_rng(0))
        with pytest.raises(ValueError):
            grid.forward(np.zeros((3, 2)))


def _boundary_points(rng, n_random=40):
    """Query points including every exact-corner combination of 0.0 / 1.0."""
    corners = np.array(
        [[x, y, z] for x in (0.0, 1.0) for y in (0.0, 1.0) for z in (0.0, 1.0)]
    )
    edges = np.array([[0.0, 0.5, 1.0], [1.0, 0.0, 0.5], [0.5, 1.0, 0.0]])
    return np.concatenate([corners, edges, rng.uniform(size=(n_random, 3))])


class TestFusedEngine:
    """The fused stacked-kernel engine vs the reference per-level loop."""

    CONFIGS = {
        "tiny": HashGridConfig(n_levels=4, n_features_per_level=2,
                               log2_hashmap_size=10, base_resolution=4,
                               finest_resolution=32),
        # Non-power-of-two tables (size_scale != 1) take the modulo path.
        "scaled": HashGridConfig(n_levels=5, n_features_per_level=2,
                                 log2_hashmap_size=11, base_resolution=4,
                                 finest_resolution=48, size_scale=0.25),
        # F != 2 exercises the generic (non-complex) gather path.
        "f3": HashGridConfig(n_levels=3, n_features_per_level=3,
                             log2_hashmap_size=9, base_resolution=4,
                             finest_resolution=16),
    }

    def _pair(self, config):
        fused = MultiResHashGrid(config, rng=new_rng(7), fused=True)
        loop = MultiResHashGrid(config, rng=new_rng(7), fused=False)
        return fused, loop

    @pytest.mark.parametrize("key", sorted(CONFIGS))
    def test_forward_matches_loop(self, key):
        config = self.CONFIGS[key]
        fused, loop = self._pair(config)
        points = _boundary_points(new_rng(8))
        out_fused = fused.forward(points)
        out_loop = loop.forward(points)
        np.testing.assert_allclose(out_fused.astype(np.float64),
                                   out_loop.astype(np.float64), atol=1e-10)

    @pytest.mark.parametrize("key", sorted(CONFIGS))
    def test_access_traces_bit_identical(self, key):
        config = self.CONFIGS[key]
        fused, loop = self._pair(config)
        points = _boundary_points(new_rng(9))
        fused.forward(points)
        loop.forward(points)
        rec_f, rec_l = fused.last_access, loop.last_access
        assert rec_f.level_offsets == rec_l.level_offsets
        assert rec_f.table_sizes == rec_l.table_sizes
        np.testing.assert_array_equal(rec_f.flat_addresses(), rec_l.flat_addresses())
        for level in range(config.n_levels):
            np.testing.assert_array_equal(rec_f.addresses[level],
                                          rec_l.addresses[level])
            np.testing.assert_array_equal(rec_f.weights[level],
                                          rec_l.weights[level])
            np.testing.assert_array_equal(rec_f.flat_addresses(level),
                                          rec_l.flat_addresses(level))

    @pytest.mark.parametrize("key", sorted(CONFIGS))
    def test_backward_matches_loop(self, key):
        config = self.CONFIGS[key]
        fused, loop = self._pair(config)
        points = _boundary_points(new_rng(10))
        out = fused.forward(points)
        loop.forward(points)
        grad = new_rng(11).normal(size=out.shape)
        fused.backward(grad)
        loop.backward(grad)
        for lf, ll in zip(fused.levels, loop.levels):
            np.testing.assert_allclose(lf.table.grad, ll.table.grad,
                                       rtol=1e-5, atol=1e-7)

    def test_chunked_query_identical_to_unchunked(self, tiny_grid_config):
        whole = MultiResHashGrid(tiny_grid_config, rng=new_rng(3), fused=True)
        chunked = MultiResHashGrid(tiny_grid_config, rng=new_rng(3), fused=True,
                                   max_chunk_points=13)
        points = _boundary_points(new_rng(12), n_random=60)
        out_whole = whole.forward(points)
        out_chunked = chunked.forward(points)
        np.testing.assert_array_equal(out_whole, out_chunked)
        np.testing.assert_array_equal(whole.last_access.flat_addresses(),
                                      chunked.last_access.flat_addresses())
        grad = new_rng(13).normal(size=out_whole.shape)
        whole.backward(grad)
        chunked.backward(grad)
        for lw, lc in zip(whole.levels, chunked.levels):
            np.testing.assert_array_equal(lw.table.grad, lc.table.grad)

    def test_backward_after_loop_forward_uses_record(self, tiny_grid_config):
        """Toggling engines mid-flight: fused backward after a loop forward."""
        grid = MultiResHashGrid(tiny_grid_config, rng=new_rng(4), fused=False)
        reference = MultiResHashGrid(tiny_grid_config, rng=new_rng(4), fused=False)
        points = new_rng(14).uniform(size=(9, 3))
        out = grid.forward(points)
        reference.forward(points)
        grid.fused = True            # backward falls back to the cached record
        grad = np.ones_like(out)
        grid.backward(grad)
        reference.backward(grad)
        for lg, lr in zip(grid.levels, reference.levels):
            np.testing.assert_allclose(lg.table.grad, lr.table.grad,
                                       rtol=1e-5, atol=1e-7)

    def test_gradcheck_at_cube_boundaries(self):
        """Finite-difference gradcheck with points exactly at 0.0 and 1.0."""
        config = HashGridConfig(n_levels=1, n_features_per_level=2,
                                log2_hashmap_size=8, base_resolution=4,
                                finest_resolution=4)
        grid = MultiResHashGrid(config, rng=new_rng(5), fused=True)
        points = np.array([
            [0.0, 0.0, 0.0],
            [1.0, 1.0, 1.0],
            [0.0, 1.0, 0.5],
            [1.0, 0.3, 0.0],
        ])
        table = grid.levels[0].table

        def loss_for_table(t):
            saved = table.data.copy()
            table.data[...] = t.astype(np.float32)
            out = grid.forward(points)
            table.data[...] = saved
            return float(np.sum(out ** 2))

        out = grid.forward(points)
        grid.zero_grad()
        grid.backward(2.0 * out)
        numeric = numerical_gradient(loss_for_table, table.data.astype(np.float64))
        np.testing.assert_allclose(grid.levels[0].table.grad, numeric,
                                   rtol=2e-2, atol=2e-2)

    def test_max_chunk_points_validation(self, tiny_grid_config):
        with pytest.raises(ValueError):
            MultiResHashGrid(tiny_grid_config, rng=new_rng(0), max_chunk_points=0)
