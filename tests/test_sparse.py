"""Sparse-gradient backward + lazy-moment optimiser tests.

Covers the ``Instant3DConfig(sparse_updates=True)`` path end to end:

* the grid backward's COO emission is bit-identical to the dense gradient
  scatter (rows and values);
* the lazy Adam/SGD row update equals a dense per-step reference that decays
  every row each step but only updates touched rows (exact for power-of-two
  betas, where ``beta ** k`` catch-up is lossless);
* 20-step trainer differentials: the COO representation against its
  dense-representation oracle, across dense/culled pipelines and both
  precision policies;
* checkpointing: the ``state_dict`` moment flush, save-continue vs
  load-continue bit-identity, and cross-mode rejection.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.config import Instant3DConfig
from repro.core.model import DecoupledRadianceField
from repro.grid.hash_encoding import HashGridConfig, MultiResHashGrid
from repro.io import load_trainer_checkpoint, save_trainer_checkpoint
from repro.nn.optim import SGD, Adam, _pow_by_exponent
from repro.nn.parameter import Parameter, SparseGrad
from repro.training.profiler import PhaseTimer, TrainPhase
from repro.training.trainer import Trainer, TrainingHistory
from repro.utils.seeding import new_rng


def _sparse_config(base: Instant3DConfig, **overrides) -> Instant3DConfig:
    return dataclasses.replace(base, sparse_updates=True, **overrides)


def _run_trainer(config, dataset, n_steps: int, seed: int = 0):
    trainer = Trainer(DecoupledRadianceField(config, seed=seed), dataset,
                      config=config, seed=seed)
    losses = [trainer.train_step()["loss"] for _ in range(n_steps)]
    return trainer, losses


def _params_equal(model_a, model_b) -> bool:
    return all(np.array_equal(a.data, b.data)
               for a, b in zip(model_a.parameters(), model_b.parameters()))


# ---------------------------------------------------------------------------
# Configuration surface
# ---------------------------------------------------------------------------

class TestConfig:
    def test_defaults_off(self, tiny_config):
        assert tiny_config.sparse_updates is False
        assert tiny_config.sparse_oracle is False
        assert tiny_config.grid_sparse_mode is None

    def test_oracle_requires_sparse_updates(self, tiny_config):
        with pytest.raises(ValueError):
            dataclasses.replace(tiny_config, sparse_oracle=True)

    def test_mode_mapping(self, tiny_config):
        assert _sparse_config(tiny_config).grid_sparse_mode == "coo"
        assert _sparse_config(tiny_config,
                              sparse_oracle=True).grid_sparse_mode == "oracle"

    def test_grid_rejects_unknown_mode(self, tiny_grid_config):
        with pytest.raises(ValueError):
            MultiResHashGrid(tiny_grid_config, rng=new_rng(0),
                             sparse_mode="bogus")


# ---------------------------------------------------------------------------
# Parameter sparse-grad slot
# ---------------------------------------------------------------------------

class TestParameter:
    def test_zero_grad_clears_sparse_slot(self):
        p = Parameter(np.zeros((4, 2)))
        p.add_sparse_grad(np.array([1, 3]), np.ones((2, 2), np.float32))
        assert p.sparse_grad is not None
        p.zero_grad()
        assert p.sparse_grad is None

    def test_coo_mode_skips_dense_clear_and_rejects_dense_accumulate(self):
        p = Parameter(np.zeros((4, 2)))
        p.coo_grads = True
        p.zero_grad()                       # must not touch the dense array
        with pytest.raises(RuntimeError):
            p.accumulate_grad(np.ones((4, 2)))
        assert np.all(p.grad == 0.0)

    def test_add_sparse_grad_validates_shapes(self):
        p = Parameter(np.zeros((4, 2)))
        with pytest.raises(ValueError):
            p.add_sparse_grad(np.array([0]), np.ones((2, 2), np.float32))
        with pytest.raises(ValueError):
            p.add_sparse_grad(np.array([0]), np.ones((1, 3), np.float32))

    def test_add_sparse_grad_merges_by_summation(self):
        p = Parameter(np.zeros((5, 2)))
        p.add_sparse_grad(np.array([0, 2]), np.ones((2, 2), np.float32))
        p.add_sparse_grad(np.array([2, 4]), 2 * np.ones((2, 2), np.float32))
        merged = p.sparse_grad
        np.testing.assert_array_equal(merged.rows, [0, 2, 4])
        np.testing.assert_array_equal(
            merged.values, [[1, 1], [3, 3], [2, 2]])


# ---------------------------------------------------------------------------
# COO emission from the grid backward
# ---------------------------------------------------------------------------

class TestGridCOOEmission:
    def _grids(self, config, **kwargs):
        dense = MultiResHashGrid(config, rng=new_rng(0), sparse_mode=None,
                                 **kwargs)
        coo = MultiResHashGrid(config, rng=new_rng(0), sparse_mode="coo",
                               **kwargs)
        return dense, coo

    def _check_match(self, dense, coo, points, grad):
        dense.forward(points)
        dense.zero_grad()
        dense.backward(grad)
        coo.forward(points)
        coo.zero_grad()
        coo.backward(grad)
        sparse = coo.table.sparse_grad
        assert isinstance(sparse, SparseGrad)
        rows = np.flatnonzero(np.any(dense.table.grad != 0.0, axis=1))
        np.testing.assert_array_equal(sparse.rows, rows)
        np.testing.assert_array_equal(sparse.values, dense.table.grad[rows])
        assert np.all(np.diff(sparse.rows) > 0)          # sorted unique
        assert np.all(coo.table.grad == 0.0)             # dense table untouched
        assert coo.last_touched_rows == rows.size

    def test_coo_matches_dense_scatter(self, tiny_grid_config, rng):
        dense, coo = self._grids(tiny_grid_config)
        points = rng.uniform(size=(257, 3))
        grad = rng.standard_normal(
            (257, tiny_grid_config.n_output_features))
        self._check_match(dense, coo, points, grad)

    def test_coo_matches_dense_scatter_chunked(self, tiny_grid_config, rng):
        dense, coo = self._grids(tiny_grid_config, max_chunk_points=64)
        points = rng.uniform(size=(200, 3))
        grad = rng.standard_normal(
            (200, tiny_grid_config.n_output_features))
        self._check_match(dense, coo, points, grad)

    def test_coo_emission_from_per_level_engine(self, tiny_grid_config, rng):
        dense, coo = self._grids(tiny_grid_config)
        coo.fused = False                    # routed through the fused scatter
        points = rng.uniform(size=(64, 3))
        grad = rng.standard_normal((64, tiny_grid_config.n_output_features))
        self._check_match(dense, coo, points, grad)

    def test_oracle_mode_keeps_dense_grads_but_flags_lazy(self,
                                                          tiny_grid_config,
                                                          rng):
        oracle = MultiResHashGrid(tiny_grid_config, rng=new_rng(0),
                                  sparse_mode="oracle")
        assert oracle.table.sparse and not oracle.table.coo_grads
        points = rng.uniform(size=(32, 3))
        oracle.forward(points)
        oracle.zero_grad()
        oracle.backward(np.ones((32, tiny_grid_config.n_output_features)))
        assert oracle.table.sparse_grad is None
        assert np.any(oracle.table.grad != 0.0)

    def test_entering_coo_mode_clears_stale_dense_grads(self,
                                                        tiny_grid_config,
                                                        rng):
        grid = MultiResHashGrid(tiny_grid_config, rng=new_rng(0))
        points = rng.uniform(size=(32, 3))
        grid.forward(points)
        grid.zero_grad()
        grid.backward(np.ones((32, tiny_grid_config.n_output_features)))
        assert np.any(grid.table.grad != 0.0)
        grid.set_sparse_mode("coo")
        # The all-zero dense-grad invariant of COO mode must hold from the
        # moment the mode is entered, or the optimiser's oracle fallback
        # would apply the stale gradient as a phantom update.
        assert np.all(grid.table.grad == 0.0)
        assert grid.table.sparse_grad is None
        param = grid.table
        opt = Adam([param], lr=1e-1)
        before = param.data.copy()
        opt.step()                            # no gradient this step
        np.testing.assert_array_equal(param.data, before)

    def test_master_table_backs_level_views(self, tiny_grid_config):
        grid = MultiResHashGrid(tiny_grid_config, rng=new_rng(0))
        assert grid.parameters() == [grid.table]
        offset = 0
        for level in grid.levels:
            assert np.shares_memory(level.table.data, grid.table.data)
            np.testing.assert_array_equal(
                level.table.data,
                grid.table.data[offset:offset + level.table_size])
            offset += level.table_size


# ---------------------------------------------------------------------------
# Lazy optimiser semantics
# ---------------------------------------------------------------------------

def _dense_lazy_adam_reference(data, grads_per_step, lr, beta1, beta2, eps):
    """Per-step dense reference of the lazy semantics: every row's moments
    decay each step; only rows with a non-zero gradient get the full update.

    Mirrors the float32 arithmetic of ``Adam._step_sparse`` with ``k == 1``
    each step, so for power-of-two betas (lossless ``beta ** k``) the lazy
    deferred path must match it bit-exactly.
    """
    data = data.astype(np.float32).copy()
    m = np.zeros_like(data)
    v = np.zeros_like(data)
    for step, grad in enumerate(grads_per_step, start=1):
        bias1 = 1.0 - beta1 ** step
        bias2 = 1.0 - beta2 ** step
        m *= np.float32(beta1)
        v *= np.float32(beta2)
        rows = np.flatnonzero(np.any(grad != 0.0, axis=1))
        if rows.size == 0:
            continue
        g = grad[rows]
        m[rows] += (1.0 - beta1) * g
        v[rows] += (1.0 - beta2) * (g * g)
        update = (lr / bias1) * m[rows] / (
            np.sqrt((1.0 / bias2) * v[rows]) + eps)
        data[rows] -= update
    return data, m, v


class TestLazyAdam:
    #: Power-of-two betas: multiplication by beta**k is exact in float, so
    #: the deferred catch-up must equal per-step decay bit-for-bit.
    BETAS = (0.5, 0.25)

    def _grads(self, rng, n_steps, n_rows=12, f=2):
        grads = []
        for _ in range(n_steps):
            grad = np.zeros((n_rows, f), np.float32)
            touched = rng.choice(n_rows, size=rng.integers(0, 5), replace=False)
            grad[touched] = rng.standard_normal((touched.size, f))
            grads.append(grad)
        return grads

    def test_lazy_equals_per_step_reference_pow2_betas(self):
        rng = new_rng(11)
        init = rng.standard_normal((12, 2)).astype(np.float32)
        grads = self._grads(rng, 15)
        param = Parameter(init.copy())
        param.sparse = True
        opt = Adam([param], lr=1e-2, betas=self.BETAS, eps=1e-10)
        for grad in grads:
            param.zero_grad()
            rows = np.flatnonzero(np.any(grad != 0.0, axis=1))
            if rows.size:
                param.add_sparse_grad(rows, grad[rows])
            opt.step()
        opt._flush_lazy()
        ref_data, ref_m, ref_v = _dense_lazy_adam_reference(
            init, grads, lr=1e-2, beta1=self.BETAS[0], beta2=self.BETAS[1],
            eps=1e-10)
        np.testing.assert_array_equal(param.data, ref_data)
        np.testing.assert_array_equal(opt._m[0], ref_m)
        np.testing.assert_array_equal(opt._v[0], ref_v)

    def test_untouched_rows_never_move(self):
        rng = new_rng(3)
        init = rng.standard_normal((10, 2)).astype(np.float32)
        param = Parameter(init.copy())
        param.sparse = True
        opt = Adam([param], lr=1e-1)
        for _ in range(8):
            param.zero_grad()
            param.add_sparse_grad(np.array([2, 5]),
                                  rng.standard_normal((2, 2)).astype(np.float32))
            opt.step()
        untouched = [r for r in range(10) if r not in (2, 5)]
        np.testing.assert_array_equal(param.data[untouched], init[untouched])
        assert not np.array_equal(param.data[[2, 5]], init[[2, 5]])

    def test_coo_and_dense_oracle_representations_agree(self):
        rng = new_rng(17)
        init = rng.standard_normal((16, 2)).astype(np.float32)
        grads = self._grads(rng, 12, n_rows=16)

        coo_param = Parameter(init.copy())
        coo_param.sparse = True
        coo_param.coo_grads = True
        coo_opt = Adam([coo_param], lr=1e-2)
        oracle_param = Parameter(init.copy())
        oracle_param.sparse = True
        oracle_opt = Adam([oracle_param], lr=1e-2)
        for grad in grads:
            coo_param.zero_grad()
            rows = np.flatnonzero(np.any(grad != 0.0, axis=1))
            if rows.size:
                coo_param.add_sparse_grad(rows, grad[rows])
            coo_opt.step()
            oracle_param.zero_grad()
            oracle_param.accumulate_grad(grad)
            oracle_opt.step()
        np.testing.assert_array_equal(coo_param.data, oracle_param.data)

    def test_state_dict_flush_then_resume_matches_continuation(self):
        rng = new_rng(23)
        init = rng.standard_normal((16, 2)).astype(np.float32)
        grads = self._grads(rng, 16, n_rows=16)

        def build():
            param = Parameter(init.copy())
            param.sparse = True
            param.coo_grads = True
            return param, Adam([param], lr=1e-2)

        def apply(param, opt, grad):
            param.zero_grad()
            rows = np.flatnonzero(np.any(grad != 0.0, axis=1))
            if rows.size:
                param.add_sparse_grad(rows, grad[rows])
            opt.step()

        param_a, opt_a = build()
        for grad in grads[:8]:
            apply(param_a, opt_a, grad)
        state = opt_a.state_dict()            # flushes (and rebases) opt_a
        param_b, opt_b = build()
        param_b.load_state_dict(param_a.state_dict())
        opt_b.load_state_dict(state)
        for grad in grads[8:]:
            apply(param_a, opt_a, grad)
            apply(param_b, opt_b, grad)
        np.testing.assert_array_equal(param_a.data, param_b.data)
        state_a, state_b = opt_a.state_dict(), opt_b.state_dict()
        for key in ("m", "v"):
            for idx in state_a[key]:
                np.testing.assert_array_equal(state_a[key][idx],
                                              state_b[key][idx])


class TestLazySGD:
    def test_sparse_sgd_momentum_matches_dense_reference(self):
        rng = new_rng(29)
        init = rng.standard_normal((10, 2)).astype(np.float32)
        grads = []
        for _ in range(10):
            grad = np.zeros((10, 2), np.float32)
            touched = rng.choice(10, size=rng.integers(0, 4), replace=False)
            grad[touched] = rng.standard_normal((touched.size, 2))
            grads.append(grad)

        param = Parameter(init.copy())
        param.sparse = True
        opt = SGD([param], lr=1e-2, momentum=0.5)   # power of two: exact
        for grad in grads:
            param.zero_grad()
            rows = np.flatnonzero(np.any(grad != 0.0, axis=1))
            if rows.size:
                param.add_sparse_grad(rows, grad[rows])
            opt.step()
        opt._flush_lazy()

        data = init.astype(np.float32).copy()
        vel = np.zeros_like(data, dtype=np.float64)
        for grad in grads:
            vel *= 0.5
            rows = np.flatnonzero(np.any(grad != 0.0, axis=1))
            if rows.size == 0:
                continue
            vel[rows] += grad[rows]
            data[rows] = (data[rows]
                          - (1e-2 * vel[rows]).astype(np.float32))
        np.testing.assert_allclose(param.data, data, rtol=1e-6, atol=1e-7)

    def test_sparse_sgd_without_momentum_is_scaled_subtract(self):
        param = Parameter(np.ones((4, 2)))
        param.sparse = True
        opt = SGD([param], lr=0.5)
        param.add_sparse_grad(np.array([1]), np.full((1, 2), 2.0, np.float32))
        opt.step()
        np.testing.assert_array_equal(param.data[1], [0.0, 0.0])
        np.testing.assert_array_equal(param.data[[0, 2, 3]],
                                      np.ones((3, 2)))


class TestDecayCatchUpProperty:
    def test_pow_by_exponent_matches_np_power(self):
        k = new_rng(0).integers(1, 40, size=128)
        for beta in (0.9, 0.99, 0.5, 0.37):
            np.testing.assert_array_equal(_pow_by_exponent(beta, k),
                                          np.power(beta, k.astype(np.float64)))

    @pytest.mark.parametrize("beta", [0.5, 0.25, 0.125])
    def test_deferred_catch_up_exact_for_pow2_betas(self, beta):
        moments = new_rng(1).standard_normal(256).astype(np.float32)
        for k in (1, 3, 7, 20):
            stepwise = moments.copy()
            for _ in range(k):
                stepwise *= np.float32(
                    _pow_by_exponent(beta, np.array([1]))[0])
            deferred = (moments
                        * _pow_by_exponent(beta, np.full(256, k))
                        ).astype(np.float32)
            np.testing.assert_array_equal(deferred, stepwise)

    @pytest.mark.parametrize("beta", [0.9, 0.99])
    def test_deferred_catch_up_close_for_general_betas(self, beta):
        moments = new_rng(2).standard_normal(256).astype(np.float32)
        for k in (2, 5, 17):
            stepwise = moments.copy()
            for _ in range(k):
                stepwise *= np.float32(beta)
            deferred = (moments
                        * _pow_by_exponent(beta, np.full(256, k))
                        ).astype(np.float32)
            np.testing.assert_allclose(deferred, stepwise,
                                       rtol=k * 2e-7, atol=1e-12)


# ---------------------------------------------------------------------------
# Trainer differentials: COO vs dense-representation oracle
# ---------------------------------------------------------------------------

class TestTrainerDifferential:
    N_STEPS = 20

    @pytest.mark.parametrize("culled", [False, True],
                             ids=["dense-pipeline", "culled-pipeline"])
    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_coo_bit_identical_to_oracle(self, tiny_config, tiny_dataset,
                                         culled, dtype):
        coo = _sparse_config(tiny_config, culling_enabled=culled,
                             compute_dtype=dtype)
        oracle = dataclasses.replace(coo, sparse_oracle=True)
        trainer_coo, losses_coo = _run_trainer(coo, tiny_dataset, self.N_STEPS)
        trainer_oracle, losses_oracle = _run_trainer(oracle, tiny_dataset,
                                                     self.N_STEPS)
        assert losses_coo == losses_oracle
        assert _params_equal(trainer_coo.model, trainer_oracle.model)
        # Flushed optimiser moments agree too.
        for opt_a, opt_b in ((trainer_coo.density_optimizer,
                              trainer_oracle.density_optimizer),
                             (trainer_coo.color_optimizer,
                              trainer_oracle.color_optimizer)):
            state_a, state_b = opt_a.state_dict(), opt_b.state_dict()
            for key in ("m", "v"):
                assert state_a[key].keys() == state_b[key].keys()
                for idx in state_a[key]:
                    np.testing.assert_array_equal(state_a[key][idx],
                                                  state_b[key][idx])

    def test_sparse_mode_changes_trajectory_vs_dense_default(
            self, tiny_config, tiny_dataset):
        # Sanity that the mode is live: lazy updates skip the momentum drift
        # of untouched rows, so the trajectory must differ from the default.
        _, dense_losses = _run_trainer(tiny_config, tiny_dataset, 12)
        _, sparse_losses = _run_trainer(_sparse_config(tiny_config),
                                        tiny_dataset, 12)
        assert dense_losses != sparse_losses

    def test_sparse_training_learns(self, tiny_config, tiny_dataset):
        _, losses = _run_trainer(_sparse_config(tiny_config), tiny_dataset, 60)
        assert np.mean(losses[-10:]) < 0.5 * np.mean(losses[:10])

    def test_rows_touched_metric(self, tiny_config, tiny_dataset):
        config = _sparse_config(tiny_config)
        trainer = Trainer(DecoupledRadianceField(config, seed=0), tiny_dataset,
                          config=config, seed=0)
        metrics = trainer.train_step()
        assert metrics["grid_rows_touched"] > 0
        total = (trainer.model.encoder.density_grid.total_table_entries
                 + trainer.model.encoder.color_grid.total_table_entries)
        assert metrics["grid_rows_touched"] <= total


# ---------------------------------------------------------------------------
# Profiler phases
# ---------------------------------------------------------------------------

class TestPhaseTimer:
    def test_phases_recorded(self, tiny_config, tiny_dataset):
        trainer = Trainer(DecoupledRadianceField(tiny_config, seed=0),
                          tiny_dataset, config=tiny_config, seed=0)
        trainer.profiler = PhaseTimer()
        for _ in range(3):
            trainer.train_step()
        summary = trainer.profiler.summary()
        for phase in TrainPhase.ORDER:
            assert phase in summary
            assert summary[phase]["calls"] == 3
            assert summary[phase]["seconds"] >= 0.0
            assert summary[phase]["mean_ms"] == pytest.approx(
                1e3 * summary[phase]["seconds"] / 3)
        assert trainer.profiler.total_seconds() == pytest.approx(
            sum(s["seconds"] for s in summary.values()))

    def test_detached_profiler_is_free_of_side_effects(self, tiny_config,
                                                       tiny_dataset):
        trainer = Trainer(DecoupledRadianceField(tiny_config, seed=0),
                          tiny_dataset, config=tiny_config, seed=0)
        assert trainer.profiler is None
        trainer.train_step()                 # must not raise

    def test_reset(self):
        timer = PhaseTimer()
        with timer.phase("x"):
            pass
        timer.reset()
        assert timer.summary() == {}
        assert timer.mean_ms("x") == 0.0


# ---------------------------------------------------------------------------
# Checkpointing under sparse mode
# ---------------------------------------------------------------------------

class TestSparseCheckpoint:
    def _trainer(self, config, dataset, seed=0):
        return Trainer(DecoupledRadianceField(config, seed=seed), dataset,
                       config=config, seed=seed)

    def test_save_continue_equals_load_continue(self, tiny_config,
                                                tiny_dataset, tmp_path):
        config = _sparse_config(tiny_config, culling_enabled=True)
        source = self._trainer(config, tiny_dataset)
        history = TrainingHistory()
        source.run_steps(12, history)
        path = tmp_path / "sparse.ckpt.npz"
        save_trainer_checkpoint(path, source, history=history)
        restored = self._trainer(config, tiny_dataset)
        restored_history = TrainingHistory()
        load_trainer_checkpoint(path, restored, history=restored_history)
        assert restored_history.losses == history.losses
        continued = [source.train_step()["loss"] for _ in range(10)]
        resumed = [restored.train_step()["loss"] for _ in range(10)]
        assert continued == resumed
        assert _params_equal(source.model, restored.model)

    def test_round_trip_state_is_byte_exact_after_flush(self, tiny_config,
                                                        tiny_dataset,
                                                        tmp_path):
        config = _sparse_config(tiny_config)
        source = self._trainer(config, tiny_dataset)
        for _ in range(9):
            source.train_step()
        path = tmp_path / "a.ckpt.npz"
        save_trainer_checkpoint(path, source)
        restored = self._trainer(config, tiny_dataset)
        load_trainer_checkpoint(path, restored)

        def flatten(node, prefix=""):
            if isinstance(node, dict):
                for key, value in node.items():
                    yield from flatten(value, f"{prefix}.{key}")
            elif isinstance(node, list):
                for i, value in enumerate(node):
                    yield from flatten(value, f"{prefix}[{i}]")
            else:
                yield prefix, node

        state_a = dict(flatten(source.state_dict()))
        state_b = dict(flatten(restored.state_dict()))
        assert state_a.keys() == state_b.keys()
        for key, value in state_a.items():
            other = state_b[key]
            if isinstance(value, np.ndarray):
                assert value.dtype == other.dtype, key
                np.testing.assert_array_equal(value, other, err_msg=key)
            else:
                assert value == other, key

    def test_manifest_records_sparse_mode(self, tiny_config, tiny_dataset,
                                          tmp_path):
        config = _sparse_config(tiny_config)
        trainer = self._trainer(config, tiny_dataset)
        trainer.train_step()
        path = tmp_path / "m.ckpt.npz"
        save_trainer_checkpoint(path, trainer)
        restored = self._trainer(config, tiny_dataset)
        metadata = load_trainer_checkpoint(path, restored)
        assert metadata["sparse_updates"] is True

    def test_cross_mode_resume_rejected(self, tiny_config, tiny_dataset,
                                        tmp_path):
        sparse_config = _sparse_config(tiny_config)
        sparse_trainer = self._trainer(sparse_config, tiny_dataset)
        sparse_trainer.train_step()
        dense_trainer = self._trainer(tiny_config, tiny_dataset)
        dense_trainer.train_step()

        with pytest.raises(ValueError, match="sparse_updates"):
            dense_trainer.load_state_dict(sparse_trainer.state_dict())
        with pytest.raises(ValueError, match="sparse_updates"):
            sparse_trainer.load_state_dict(dense_trainer.state_dict())

    def test_coo_and_oracle_checkpoints_are_interchangeable(self, tiny_config,
                                                            tiny_dataset,
                                                            tmp_path):
        # The two representations share semantics, so a checkpoint taken
        # under one restores (and continues bit-identically) under the other.
        coo_config = _sparse_config(tiny_config)
        oracle_config = dataclasses.replace(coo_config, sparse_oracle=True)
        source = self._trainer(coo_config, tiny_dataset)
        for _ in range(8):
            source.train_step()
        path = tmp_path / "x.ckpt.npz"
        save_trainer_checkpoint(path, source)
        restored = self._trainer(oracle_config, tiny_dataset)
        load_trainer_checkpoint(path, restored)
        continued = [source.train_step()["loss"] for _ in range(6)]
        resumed = [restored.train_step()["loss"] for _ in range(6)]
        assert continued == resumed
