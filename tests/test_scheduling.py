"""Tests for locality-aware ray scheduling (repro.nerf.scheduling).

Two contracts anchor the scheduler seam:

(a) ``ray_schedule="uniform"`` (the default) is *bit-identical* to the
    pre-scheduler trainer in every configuration — dense and culled,
    float64 and float32 — because the uniform scheduler consumes the pixel
    RNG stream exactly as the old inline ``sample_pixel_batch`` call did;
(b) the tiled schedules draw real pixels (targets match the images, rays
    match the cameras) and only reorder *within* the drawn batch, so
    training remains correct — just with a locality-friendly batch layout.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.config import _RAY_SCHEDULES
from repro.core.model import DecoupledRadianceField
from repro.nerf.cameras import sample_pixel_batch
from repro.nerf.occupancy import OccupancyGrid
from repro.nerf.sampling import ray_probe_points
from repro.nerf.scheduling import (
    RAY_SCHEDULES,
    MortonTileScheduler,
    OccupancyTileScheduler,
    UniformScheduler,
    make_scheduler,
)
from repro.training.profiler import PhaseTimer, TrainPhase
from repro.training.trainer import Trainer
from repro.utils.morton import (
    morton_decode_2d,
    morton_encode_2d,
    morton_encode_3d,
)
from repro.utils.seeding import new_rng


def _params_equal(model_a, model_b) -> bool:
    return all(np.array_equal(a.data, b.data)
               for a, b in zip(model_a.parameters(), model_b.parameters()))


class _InlineUniformOracle:
    """The pre-scheduler Step ❶, verbatim: an inline sample_pixel_batch call.

    Swapped into a trainer in place of its scheduler, this reproduces the
    seed trainer's pixel draw exactly — the oracle the uniform schedule is
    differentially pinned against.
    """

    def __init__(self, cameras, images, batch_pixels):
        self.cameras = cameras
        self.images = images
        self.batch_pixels = batch_pixels

    def sample_batch(self, rng):
        return sample_pixel_batch(self.cameras, self.images,
                                  self.batch_pixels, rng)


class TestMortonCodes:
    def test_2d_roundtrip(self):
        rng = new_rng(0)
        x = rng.integers(0, 1 << 16, size=256)
        y = rng.integers(0, 1 << 16, size=256)
        dx, dy = morton_decode_2d(morton_encode_2d(x, y))
        assert np.array_equal(dx, x)
        assert np.array_equal(dy, y)

    def test_2d_bit_interleave(self):
        # x occupies the even bits, y the odd bits.
        assert int(morton_encode_2d(np.array([1]), np.array([0]))[0]) == 1
        assert int(morton_encode_2d(np.array([0]), np.array([1]))[0]) == 2
        assert int(morton_encode_2d(np.array([3]), np.array([3]))[0]) == 15

    def test_3d_bit_interleave(self):
        one, zero = np.array([1]), np.array([0])
        assert int(morton_encode_3d(one, zero, zero)[0]) == 1
        assert int(morton_encode_3d(zero, one, zero)[0]) == 2
        assert int(morton_encode_3d(zero, zero, one)[0]) == 4
        assert int(morton_encode_3d(one, one, one)[0]) == 7

    def test_3d_unit_cube_traversal(self):
        # The eight corners of a 2^3 block enumerate 0..7 along the Z curve.
        z, y, x = np.meshgrid(np.arange(2), np.arange(2), np.arange(2),
                              indexing="ij")
        codes = morton_encode_3d(x.reshape(-1), y.reshape(-1), z.reshape(-1))
        assert sorted(codes.tolist()) == list(range(8))

    def test_codes_are_unique_at_scale(self):
        rng = new_rng(1)
        x = rng.integers(0, 1 << 12, size=4096)
        y = rng.integers(0, 1 << 12, size=4096)
        z = rng.integers(0, 1 << 12, size=4096)
        coords = set(zip(x.tolist(), y.tolist(), z.tolist()))
        codes = morton_encode_3d(x, y, z)
        assert len(set(codes.tolist())) == len(coords)


class TestConfigValidation:
    def test_schedule_names_match_config_copy(self):
        # config.py keeps its own tuple (core cannot import nerf); the two
        # must never drift apart.
        assert tuple(_RAY_SCHEDULES) == tuple(RAY_SCHEDULES)

    def test_unknown_schedule_rejected(self, tiny_config):
        with pytest.raises(ValueError, match="ray_schedule"):
            dataclasses.replace(tiny_config, ray_schedule="hilbert")

    def test_invalid_tile_size_rejected(self, tiny_config):
        with pytest.raises(ValueError, match="tile_size"):
            dataclasses.replace(tiny_config, tile_size=0)

    def test_factory_rejects_unknown_name(self, tiny_dataset):
        with pytest.raises(ValueError, match="unknown ray schedule"):
            make_scheduler("hilbert", tiny_dataset.train_cameras,
                           tiny_dataset.train_images, 8)


class TestUniformBitIdentity:
    """(a) The default schedule is bit-identical to the pre-scheduler trainer."""

    @pytest.mark.parametrize("culling", [False, True],
                             ids=["dense", "culled"])
    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_uniform_matches_inline_draw_over_20_steps(
            self, tiny_config, tiny_dataset, culling, dtype):
        config = dataclasses.replace(tiny_config, culling_enabled=culling,
                                     compute_dtype=dtype)

        oracle_model = DecoupledRadianceField(config, seed=0)
        oracle = Trainer(oracle_model, tiny_dataset, seed=0)
        assert isinstance(oracle.scheduler, UniformScheduler)
        oracle.scheduler = _InlineUniformOracle(
            tiny_dataset.train_cameras, tiny_dataset.train_images,
            config.batch_pixels)

        model = DecoupledRadianceField(config, seed=0)
        trainer = Trainer(model, tiny_dataset, seed=0)

        oracle_losses = [oracle.train_step()["loss"] for _ in range(20)]
        losses = [trainer.train_step()["loss"] for _ in range(20)]
        assert losses == oracle_losses
        assert _params_equal(model, oracle_model)

    def test_uniform_is_the_default(self, tiny_config):
        assert tiny_config.ray_schedule == "uniform"
        assert tiny_config.address_sort is False


class TestMortonTileScheduler:
    def test_targets_and_rays_match_drawn_pixels(self, tiny_dataset):
        sched = MortonTileScheduler(tiny_dataset.train_cameras,
                                    tiny_dataset.train_images,
                                    batch_pixels=48, tile_size=4)
        bundle, targets = sched.sample_batch(new_rng(7))
        views, cols, rows = sched.last_pixels
        assert bundle.n_rays == 48 == targets.shape[0] == cols.shape[0]
        for view in np.unique(views):
            mask = views == view
            cam = tiny_dataset.train_cameras[view]
            image = np.asarray(tiny_dataset.train_images[view])
            expected = cam.rays_for_pixels(cols[mask], rows[mask])
            assert np.array_equal(bundle.origins[mask], expected.origins)
            assert np.array_equal(bundle.directions[mask], expected.directions)
            assert np.array_equal(targets[mask], image[rows[mask], cols[mask]])

    def test_tiles_are_contiguous_blocks(self, tiny_dataset):
        t = 4
        sched = MortonTileScheduler(tiny_dataset.train_cameras,
                                    tiny_dataset.train_images,
                                    batch_pixels=t * t * 3, tile_size=t)
        sched.sample_batch(new_rng(3))
        views, cols, rows = sched.last_pixels
        for start in range(0, views.size, t * t):
            sl = slice(start, start + t * t)
            assert np.unique(views[sl]).size == 1
            assert cols[sl].max() - cols[sl].min() == t - 1
            assert rows[sl].max() - rows[sl].min() == t - 1
            # Within a tile the pixels follow the 2-D Z curve.
            local = morton_encode_2d(cols[sl] - cols[sl].min(),
                                     rows[sl] - rows[sl].min())
            assert np.all(np.diff(local) > 0)

    def test_partial_tile_truncates_to_batch_pixels(self, tiny_dataset):
        sched = MortonTileScheduler(tiny_dataset.train_cameras,
                                    tiny_dataset.train_images,
                                    batch_pixels=10, tile_size=4)
        bundle, targets = sched.sample_batch(new_rng(0))
        assert bundle.n_rays == 10 == targets.shape[0]

    def test_tile_clamped_to_image(self, tiny_dataset):
        # tiny_dataset images are 20x20; a 64-wide tile must shrink to fit.
        sched = MortonTileScheduler(tiny_dataset.train_cameras,
                                    tiny_dataset.train_images,
                                    batch_pixels=16, tile_size=64)
        assert sched.tile_size == 20
        bundle, _ = sched.sample_batch(new_rng(0))
        assert bundle.n_rays == 16

    def test_same_seed_same_draw(self, tiny_dataset):
        make = lambda: MortonTileScheduler(tiny_dataset.train_cameras,
                                           tiny_dataset.train_images,
                                           batch_pixels=32, tile_size=4)
        a, _ = make().sample_batch(new_rng(11))
        b, _ = make().sample_batch(new_rng(11))
        assert np.array_equal(a.origins, b.origins)
        assert np.array_equal(a.directions, b.directions)


class TestOccupancyTileScheduler:
    def _schedulers(self, dataset, occupancy, seed=5, batch=32, tile=4):
        morton = MortonTileScheduler(dataset.train_cameras,
                                     dataset.train_images, batch, tile)
        occ = OccupancyTileScheduler(dataset.train_cameras,
                                     dataset.train_images, batch, tile,
                                     occupancy=occupancy,
                                     scene_bound=dataset.scene_bound)
        return (morton.sample_batch(new_rng(seed)), morton,
                occ.sample_batch(new_rng(seed)), occ)

    def test_no_grid_degrades_to_morton(self, tiny_dataset):
        (m_bundle, m_targets), _, (o_bundle, o_targets), occ = \
            self._schedulers(tiny_dataset, occupancy=None)
        assert occ.last_keys is None
        assert np.array_equal(m_bundle.origins, o_bundle.origins)
        assert np.array_equal(m_targets, o_targets)

    def test_empty_grid_degrades_to_morton(self, tiny_dataset):
        grid = OccupancyGrid(resolution=8)
        assert not grid.has_data
        (m_bundle, _), _, (o_bundle, _), occ = \
            self._schedulers(tiny_dataset, occupancy=grid)
        assert occ.last_keys is None
        assert np.array_equal(m_bundle.origins, o_bundle.origins)

    def test_reorder_is_a_permutation_with_sorted_keys(self, tiny_dataset):
        grid = OccupancyGrid(resolution=8)
        rng = new_rng(2)
        grid.mark_occupied(rng.uniform(0.2, 0.8, size=(64, 3)))
        (m_bundle, m_targets), _, (o_bundle, o_targets), occ = \
            self._schedulers(tiny_dataset, occupancy=grid)
        keys = occ.last_keys
        assert keys is not None and np.all(np.diff(keys) >= 0)
        # Same rays, same targets — only the order differs.
        m_rows = {tuple(r) for r in np.hstack([m_bundle.origins,
                                               m_bundle.directions, m_targets])}
        o_rows = {tuple(r) for r in np.hstack([o_bundle.origins,
                                               o_bundle.directions, o_targets])}
        assert m_rows == o_rows

    def test_reorder_consumes_no_extra_rng(self, tiny_dataset):
        grid = OccupancyGrid(resolution=8)
        grid.mark_occupied(np.full((4, 3), 0.5))
        rng_a, rng_b = new_rng(9), new_rng(9)
        morton = MortonTileScheduler(tiny_dataset.train_cameras,
                                     tiny_dataset.train_images, 32, 4)
        occ = OccupancyTileScheduler(tiny_dataset.train_cameras,
                                     tiny_dataset.train_images, 32, 4,
                                     occupancy=grid,
                                     scene_bound=tiny_dataset.scene_bound)
        morton.sample_batch(rng_a)
        occ.sample_batch(rng_b)
        # Both generators must sit at the same point in their streams.
        assert rng_a.integers(0, 1 << 30) == rng_b.integers(0, 1 << 30)


class TestRayProbing:
    def test_probe_points_march_between_near_and_far(self):
        from repro.nerf.cameras import RayBundle
        bundle = RayBundle(origins=np.zeros((2, 3)),
                           directions=np.eye(3)[:2],
                           near=1.0, far=3.0)
        points = ray_probe_points(bundle, n_probes=4)
        assert points.shape == (8, 3)
        # First ray marches along +x at the probe midpoints.
        assert np.allclose(points[:4, 0], [1.25, 1.75, 2.25, 2.75])
        assert np.allclose(points[:4, 1:], 0.0)

    def test_probe_count_validated(self):
        from repro.nerf.cameras import RayBundle
        bundle = RayBundle(origins=np.zeros((1, 3)),
                           directions=np.ones((1, 3)),
                           near=0.1, far=1.0)
        with pytest.raises(ValueError):
            ray_probe_points(bundle, n_probes=0)

    def test_first_occupied_cells_finds_first_hit(self):
        grid = OccupancyGrid(resolution=4)
        grid.mark_occupied(np.array([[0.6, 0.6, 0.6]]))
        # Ray A: probes through the occupied cell on its third probe.
        # Ray B: never enters it.
        probes = np.array([
            [0.1, 0.1, 0.1], [0.3, 0.3, 0.3], [0.6, 0.6, 0.6],
            [0.1, 0.9, 0.1], [0.3, 0.9, 0.3], [0.9, 0.9, 0.9],
        ])
        found, ix, iy, iz = grid.first_occupied_cells(probes, n_rays=2,
                                                      n_probes=3)
        assert found.tolist() == [True, False]
        assert (int(ix[0]), int(iy[0]), int(iz[0])) == (2, 2, 2)

    def test_first_occupied_cells_validates_shape(self):
        grid = OccupancyGrid(resolution=4)
        grid.mark_occupied(np.full((1, 3), 0.5))
        with pytest.raises(ValueError):
            grid.first_occupied_cells(np.zeros((5, 3)), n_rays=2, n_probes=3)


class TestScheduledTraining:
    """Non-uniform schedules train correctly end to end."""

    @pytest.mark.parametrize("schedule", ["morton", "occupancy"])
    def test_scheduled_training_reduces_loss(self, tiny_config, tiny_dataset,
                                             schedule):
        config = dataclasses.replace(tiny_config, culling_enabled=True,
                                     ray_schedule=schedule, tile_size=4)
        model = DecoupledRadianceField(config, seed=0)
        trainer = Trainer(model, tiny_dataset, seed=0)
        losses = [trainer.train_step()["loss"] for _ in range(30)]
        assert np.mean(losses[-5:]) < np.mean(losses[:5])

    def test_address_sort_preserves_touched_rows(self, tiny_config,
                                                 tiny_dataset):
        base = dataclasses.replace(tiny_config, culling_enabled=True,
                                   ray_schedule="morton", tile_size=4)
        plain = Trainer(DecoupledRadianceField(base, seed=0), tiny_dataset,
                        seed=0)
        srt = dataclasses.replace(base, address_sort=True)
        sorted_ = Trainer(DecoupledRadianceField(srt, seed=0), tiny_dataset,
                          seed=0)
        # The sort permutes the compacted batch; scatter targets the same
        # rows, and the losses agree to reduction-order (ulp-level) noise.
        for _ in range(5):
            a = plain.train_step()
            b = sorted_.train_step()
            assert a["grid_rows_touched"] == b["grid_rows_touched"]
            assert np.isclose(a["loss"], b["loss"], rtol=1e-9, atol=0.0)

    def test_sampling_phase_is_profiled(self, tiny_config, tiny_dataset):
        model = DecoupledRadianceField(tiny_config, seed=0)
        trainer = Trainer(model, tiny_dataset, seed=0)
        trainer.profiler = PhaseTimer()
        trainer.train_step()
        assert trainer.profiler.calls.get(TrainPhase.SAMPLING) == 1
        assert TrainPhase.SAMPLING in TrainPhase.ORDER
