"""Tests for the access-pattern, breakdown and learning-pace analyses."""

import numpy as np
import pytest

from repro.analysis import (
    address_group_stats,
    forward_backward_window_comparison,
    group_vertex_addresses,
    inter_group_distances,
    intra_group_distances,
    intra_group_within_threshold,
    learning_pace_study,
    runtime_breakdown,
    sliding_window_unique_addresses,
)
from repro.analysis.breakdown import CATEGORY_GRID, CATEGORY_MLP, CATEGORY_OTHER
from repro.accelerator.devices import XAVIER_NX, EdgeGPUModel
from repro.core.config import Instant3DConfig
from repro.grid.hash_encoding import HashGridConfig, MultiResHashGrid
from repro.training.profiler import WorkloadScale, build_iteration_workload
from repro.utils.seeding import new_rng


@pytest.fixture(scope="module")
def hashed_level_record():
    """An access record from a grid level that actually uses the spatial hash."""
    config = HashGridConfig(n_levels=1, n_features_per_level=2,
                            log2_hashmap_size=12, base_resolution=64,
                            finest_resolution=64)
    grid = MultiResHashGrid(config, rng=new_rng(0))
    points = new_rng(1).uniform(0.05, 0.95, size=(256, 3))
    grid.forward(points)
    return grid.last_access


class TestAddressGrouping:
    def test_grouping_shape(self, hashed_level_record):
        grouped = group_vertex_addresses(hashed_level_record, level=0)
        assert grouped.shape == (hashed_level_record.n_points, 4, 2)

    def test_intra_group_locality(self, hashed_level_record):
        """Fig. 9: the overwhelming majority of intra-group distances are tiny."""
        fraction = intra_group_within_threshold(hashed_level_record, level=0, threshold=5)
        assert fraction > 0.85

    def test_inter_group_remoteness(self, hashed_level_record):
        """Fig. 8: different groups are far apart in the hash table."""
        intra = np.abs(intra_group_distances(hashed_level_record, level=0))
        inter = inter_group_distances(hashed_level_record, level=0)
        assert inter.mean() > 50 * max(intra.mean(), 1.0)

    def test_summary_stats(self, hashed_level_record):
        stats = address_group_stats(hashed_level_record, level=0)
        assert stats.fraction_intra_within_threshold > 0.85
        assert stats.mean_inter_group_distance > stats.mean_intra_group_distance
        assert stats.n_points == hashed_level_record.n_points


class TestSlidingWindow:
    def test_unique_counts_bounds(self):
        addresses = np.random.default_rng(0).integers(0, 50, size=5000)
        stats = sliding_window_unique_addresses(addresses, window=1000)
        assert all(1 <= c <= 50 for c in stats.unique_counts)

    def test_all_unique_stream(self):
        stats = sliding_window_unique_addresses(np.arange(3000), window=1000)
        assert all(c == 1000 for c in stats.unique_counts)

    def test_forward_backward_comparison(self, tiny_trace):
        branch = tiny_trace.branch("density")
        window = min(500, branch.read_addresses.size)
        comparison = forward_backward_window_comparison(
            branch.read_addresses, branch.write_addresses, window=window)
        assert comparison["back_propagation"].mean_unique <= \
            comparison["feed_forward"].mean_unique

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            sliding_window_unique_addresses(np.arange(10), window=0)


class TestRuntimeBreakdown:
    def test_categories_partition_runtime(self):
        workload = build_iteration_workload(Instant3DConfig.paper_scale_baseline(),
                                            WorkloadScale.paper_scale())
        estimate = EdgeGPUModel(XAVIER_NX).estimate_training(workload)
        breakdown = runtime_breakdown(estimate)
        total = sum(breakdown.category_seconds.values())
        assert total == pytest.approx(estimate.per_iteration_s, rel=1e-9)
        assert set(breakdown.category_seconds) == {CATEGORY_GRID, CATEGORY_MLP,
                                                   CATEGORY_OTHER}

    def test_fractions_sum_to_one(self):
        workload = build_iteration_workload(Instant3DConfig.paper_scale_baseline())
        estimate = EdgeGPUModel(XAVIER_NX).estimate_training(workload)
        breakdown = runtime_breakdown(estimate)
        fractions = [breakdown.fraction(c) for c in breakdown.category_seconds]
        assert sum(fractions) == pytest.approx(1.0)


class TestLearningPace:
    def test_trajectory_and_color_leads_density(self, tiny_dataset, tiny_config):
        """Fig. 5: RGB quality is learned at a faster pace than depth quality."""
        result = learning_pace_study(tiny_dataset, tiny_config, n_iterations=30,
                                     eval_every=10, eval_samples=16)
        assert result.scene == tiny_dataset.name
        assert len(result.iterations) == len(result.rgb_psnrs) == len(result.depth_psnrs)
        assert result.iterations[-1] == 30
        assert np.isfinite(result.final_rgb_psnr)

    def test_iterations_to_reach_helper(self):
        from repro.analysis.sensitivity import LearningPaceResult

        result = LearningPaceResult(scene="x", iterations=[10, 20, 30],
                                    rgb_psnrs=[20.0, 24.0, 26.0],
                                    depth_psnrs=[18.0, 21.0, 24.0])
        assert result.iterations_to_reach(24.0, "rgb") == 20
        assert result.iterations_to_reach(24.0, "depth") == 30
        assert result.iterations_to_reach(40.0, "rgb") is None
        assert result.mean_rgb_lead > 0

    def test_invalid_eval_every(self, tiny_dataset, tiny_config):
        with pytest.raises(ValueError):
            learning_pace_study(tiny_dataset, tiny_config, n_iterations=5, eval_every=0)
