"""Tests for the training pipeline: profiler, trainer, metrics."""

import numpy as np
import pytest

from repro.core.config import Instant3DConfig
from repro.core.model import DecoupledRadianceField
from repro.training import (
    PipelineStep,
    Trainer,
    WorkloadScale,
    build_iteration_workload,
    evaluate_model,
    train_scene,
)
from repro.training.metrics import render_view
from repro.training.profiler import grid_storage_bytes, grid_table_entries


class TestWorkloadScale:
    def test_paper_scale_matches_paper_statement(self):
        scale = WorkloadScale.paper_scale()
        # The paper reports >200,000 embedding interpolations per iteration.
        assert scale.points_per_iteration > 150_000

    def test_from_config(self, tiny_config):
        scale = WorkloadScale.from_config(tiny_config, n_iterations=10)
        assert scale.points_per_iteration == tiny_config.points_per_iteration
        assert scale.n_iterations == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadScale(batch_pixels=0, samples_per_ray=1, n_iterations=1)


class TestGridAccounting:
    def test_table_entries_respect_cap(self, tiny_grid_config):
        entries = grid_table_entries(tiny_grid_config)
        assert entries <= tiny_grid_config.n_levels * tiny_grid_config.max_table_entries
        assert entries > 0

    def test_storage_scales_with_size_scale(self, tiny_grid_config):
        small = grid_storage_bytes(tiny_grid_config.scaled(0.25))
        full = grid_storage_bytes(tiny_grid_config)
        assert small < full

    def test_matches_allocated_grid(self, tiny_config):
        """Static accounting must agree with the actually allocated tables."""
        model = DecoupledRadianceField(tiny_config, seed=0)
        assert (grid_table_entries(tiny_config.density_grid_config)
                == model.encoder.density_grid.total_table_entries)
        assert (grid_table_entries(tiny_config.color_grid_config)
                == model.encoder.color_grid.total_table_entries)


class TestIterationWorkload:
    def test_all_pipeline_steps_present(self):
        workload = build_iteration_workload(Instant3DConfig.paper_scale_baseline())
        steps = {s.step for s in workload.steps}
        assert steps == set(PipelineStep.ORDER)

    def test_grid_steps_have_one_entry_per_branch(self):
        workload = build_iteration_workload(Instant3DConfig.paper_scale_instant3d())
        assert len(workload.by_step(PipelineStep.GRID_FORWARD)) == 2
        assert len(workload.by_step(PipelineStep.GRID_BACKWARD)) == 2
        branches = {s.branch for s in workload.by_step(PipelineStep.GRID_FORWARD)}
        assert branches == {"density", "color"}

    def test_grid_accesses_match_config(self):
        config = Instant3DConfig.paper_scale_baseline()
        workload = build_iteration_workload(config)
        forward = workload.by_step(PipelineStep.GRID_FORWARD)
        points = workload.points_per_iteration
        for step in forward:
            assert step.grid_accesses == points * 8 * config.grid.n_levels

    def test_update_fraction_propagates_to_backward(self):
        config = Instant3DConfig.paper_scale_instant3d()
        workload = build_iteration_workload(config)
        backward = {s.branch: s for s in workload.by_step(PipelineStep.GRID_BACKWARD)}
        assert backward["color"].update_fraction == 0.5
        assert backward["density"].update_fraction == 1.0

    def test_instant3d_reduces_effective_grid_work(self):
        base = build_iteration_workload(Instant3DConfig.paper_scale_baseline())
        i3d = build_iteration_workload(
            Instant3DConfig.paper_scale_baseline().with_ratios(
                color_size_ratio=0.25, color_update_freq=0.5)
        )
        base_bytes = base.total("grid_bytes", list(PipelineStep.GRID_STEPS))
        i3d_bytes = i3d.total("grid_bytes", list(PipelineStep.GRID_STEPS))
        assert i3d_bytes < base_bytes

    def test_grid_table_bytes_reflect_size_ratio(self):
        workload = build_iteration_workload(Instant3DConfig.paper_scale_instant3d())
        bytes_ = workload.grid_table_bytes
        assert bytes_["color"] < bytes_["density"]
        # The accelerator design targets a ~1 MB density table and ~256 KB color table.
        assert 0.5e6 < bytes_["density"] < 1.3e6
        assert 0.1e6 < bytes_["color"] < 0.4e6


class TestTrainer:
    def test_single_step_outputs(self, tiny_config, tiny_dataset):
        model = DecoupledRadianceField(tiny_config, seed=0)
        trainer = Trainer(model, tiny_dataset, seed=0)
        metrics = trainer.train_step()
        assert metrics["loss"] >= 0.0
        assert metrics["iteration"] == 1.0
        assert metrics["updated_density"] == 1.0 or metrics["updated_density"] == 0.0

    def test_loss_decreases_over_training(self, tiny_config, tiny_dataset):
        model = DecoupledRadianceField(tiny_config, seed=0)
        trainer = Trainer(model, tiny_dataset, seed=0)
        losses = [trainer.train_step()["loss"] for _ in range(40)]
        assert np.mean(losses[-10:]) < np.mean(losses[:10])

    def test_update_frequency_respected(self, tiny_config, tiny_dataset):
        model = DecoupledRadianceField(tiny_config, seed=0)
        trainer = Trainer(model, tiny_dataset, seed=0)
        result = trainer.train(12)
        assert result.density_updates == 12
        assert result.color_updates == 6           # F_C = 0.5

    def test_train_scene_improves_over_untrained(self, tiny_config, tiny_dataset):
        untrained = DecoupledRadianceField(tiny_config, seed=0)
        untrained_eval = evaluate_model(untrained, tiny_dataset, n_views=1, n_samples=16)
        result = train_scene(tiny_dataset, tiny_config, n_iterations=40, seed=0)
        assert result.rgb_psnr > untrained_eval.rgb_psnr

    def test_history_and_intermediate_evals(self, tiny_config, tiny_dataset):
        result = train_scene(tiny_dataset, tiny_config, n_iterations=10, seed=0,
                             eval_every=5)
        history = result.history
        assert len(history.losses) == 10
        assert history.eval_iterations == [5, 10]
        assert len(history.eval_rgb_psnrs) == 2

    def test_invalid_iteration_count(self, tiny_config, tiny_dataset):
        model = DecoupledRadianceField(tiny_config, seed=0)
        trainer = Trainer(model, tiny_dataset, seed=0)
        with pytest.raises(ValueError):
            trainer.train(0)


class TestMetrics:
    def test_render_view_shapes(self, tiny_model, tiny_dataset):
        camera = tiny_dataset.test_views[0].camera
        rgb, depth = render_view(tiny_model, camera, tiny_dataset.scene_bound,
                                 n_samples=8)
        assert rgb.shape == (camera.height, camera.width, 3)
        assert depth.shape == (camera.height, camera.width)
        assert np.all((rgb >= 0.0) & (rgb <= 1.0))

    def test_evaluate_model_result_structure(self, tiny_model, tiny_dataset):
        result = evaluate_model(tiny_model, tiny_dataset, n_samples=8)
        assert result.n_views == tiny_dataset.n_test_views
        assert len(result.per_view_rgb) == result.n_views
        assert np.isfinite(result.rgb_psnr) and np.isfinite(result.depth_psnr)

    def test_evaluate_model_requires_test_views(self, tiny_model, tiny_dataset):
        import dataclasses

        empty = dataclasses.replace(tiny_dataset, test_views=[])
        with pytest.raises(ValueError):
            evaluate_model(tiny_model, empty)
