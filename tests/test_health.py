"""Numerical-health guardrails: detection, rollback recovery, quarantine.

Two invariants anchor this suite, mirroring the fault-injection discipline
of ``test_reliability.py``:

* **No-trip bit-identity** — a guarded trainer that never trips produces
  the bit-identical trajectory of an unguarded one (the monitor is
  read-only; snapshots are host-side copies).  Pinned as differentials
  over dense/culled x float64/float32.
* **Deterministic recovery** — under a fixed fault seed, a recovered run
  is replayable end to end: two runs see the same guard trips, the same
  rollback schedule, the same remediation and the same final parameters.
"""

from __future__ import annotations

import dataclasses
import math
import os
from types import SimpleNamespace

import numpy as np
import pytest

from repro.core.config import Instant3DConfig
from repro.core.model import DecoupledRadianceField
from repro.datasets import make_synthetic_scene
from repro.datasets.dataset import build_dataset
from repro.io import CheckpointError, NonFiniteCheckpointError, save_checkpoint
from repro.io.checkpoint import load_trainer_checkpoint, save_trainer_checkpoint
from repro.reliability import (
    FaultInjector,
    GuardTrip,
    HealthMonitor,
    HealthPolicy,
    NumericalFault,
    SnapshotRing,
    copy_state_tree,
    fault_injection,
    fault_sites,
    get_injector,
    register_fault_site,
)
from repro.serving import JobPoisoned, SceneService
from repro.training.trainer import Trainer, TrainingHistory

FAULT_SEED = int(os.environ.get("REPRO_FAULT_SEED", "0"))

#: Fast watchdog for tests: snapshot often so recovery rewinds little.
FAST_POLICY = HealthPolicy(snapshot_every=5, snapshot_ring=2)


def _make_dataset(name="lego", image_size=8):
    return build_dataset(make_synthetic_scene(name), n_train_views=2,
                         n_test_views=1, image_size=image_size, seed=0,
                         suite="nerf_synthetic", gt_samples=16)


@pytest.fixture(scope="module")
def health_dataset():
    return _make_dataset()


def _trainer(config, dataset, seed=0):
    return Trainer(DecoupledRadianceField(config, seed=seed), dataset,
                   config=config, seed=seed)


def _params(trainer):
    return [np.array(p.data, copy=True) for p in trainer.model.parameters()]


# ---------------------------------------------------------------------------
# Policy / config validation
# ---------------------------------------------------------------------------

class TestHealthPolicyValidation:
    def test_defaults_are_valid(self):
        HealthPolicy()

    @pytest.mark.parametrize("kwargs", [
        {"check_every": 0},
        {"loss_window": 1},
        {"loss_window_min": 1},
        {"loss_window": 4, "loss_window_min": 8},
        {"loss_spike_factor": 1.0},
        {"loss_spike_factor": float("nan")},
        {"param_limit": 0.0},
        {"param_limit": float("inf")},
        {"snapshot_every": 0},
        {"snapshot_ring": 0},
        {"max_rollbacks": 0},
        {"lr_backoff": 0.0},
        {"lr_backoff": 1.5},
        {"lr_backoff": float("nan")},
    ])
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            HealthPolicy(**kwargs)

    def test_spike_guard_can_be_disabled(self):
        assert HealthPolicy(loss_spike_factor=None).loss_spike_factor is None


class TestConfigNumericValidation:
    @pytest.mark.parametrize("kwargs", [
        {"learning_rate": 0.0},
        {"learning_rate": -1e-2},
        {"learning_rate": float("nan")},
        {"learning_rate": float("inf")},
        {"occupancy_threshold": float("nan")},
        {"occupancy_threshold": -0.5},
        {"early_termination_tau": float("nan")},
    ])
    def test_non_finite_or_out_of_range_rejected(self, tiny_config, kwargs):
        with pytest.raises(ValueError):
            dataclasses.replace(tiny_config, **kwargs)

    def test_health_policy_rides_on_config(self, tiny_config):
        config = dataclasses.replace(tiny_config, health=FAST_POLICY)
        assert config.health.snapshot_every == 5


# ---------------------------------------------------------------------------
# HealthMonitor unit tests (fake parameters, no trainer)
# ---------------------------------------------------------------------------

def _fake_param(data=None, grad=None, sparse_values=None):
    sparse = None
    if sparse_values is not None:
        sparse = SimpleNamespace(values=np.asarray(sparse_values))
    return SimpleNamespace(
        data=np.asarray(data if data is not None else np.ones(4)),
        grad=None if grad is None else np.asarray(grad),
        sparse_grad=sparse)


@pytest.mark.nonfinite
class TestHealthMonitor:
    def test_healthy_check_feeds_loss_window(self):
        monitor = HealthMonitor(HealthPolicy())
        for i in range(5):
            assert monitor.check(i, 0.5, [_fake_param()]) is None
        assert monitor.guard_trips == 0
        assert list(monitor._losses) == [0.5] * 5

    def test_nonfinite_loss_trips(self):
        monitor = HealthMonitor(HealthPolicy())
        trip = monitor.check(3, float("nan"), [_fake_param()])
        assert isinstance(trip, GuardTrip)
        assert trip.reason == "loss-nonfinite" and trip.iteration == 3
        assert monitor.guard_trips == 1 and monitor.trips == [trip]
        # A tripped loss never joins the window.
        assert len(monitor._losses) == 0

    def test_loss_spike_trips_after_window_fills(self):
        policy = HealthPolicy(loss_window=8, loss_window_min=4,
                              loss_spike_factor=10.0)
        monitor = HealthMonitor(policy)
        for i in range(3):
            monitor.check(i, 1.0, [])
        # Window below loss_window_min: even a huge loss passes.
        assert monitor.check(3, 1e6, []) is None
        monitor._losses.clear()
        for i in range(4):
            monitor.check(i, 1.0, [])
        assert monitor.check(4, 9.9, []) is None        # below 10x median
        trip = monitor.check(5, 11.0, [])
        assert trip is not None and trip.reason == "loss-spike"

    def test_grad_nonfinite_trips_dense_and_sparse(self):
        monitor = HealthMonitor(HealthPolicy())
        bad_dense = _fake_param(grad=[1.0, float("nan")])
        trip = monitor.check(0, 0.1, [bad_dense])
        assert trip.reason == "grad-nonfinite" and "dense" in trip.detail
        bad_sparse = _fake_param(sparse_values=[float("inf")])
        trip = monitor.check(1, 0.1, [bad_sparse])
        assert trip.reason == "grad-nonfinite" and "sparse" in trip.detail

    def test_param_nonfinite_and_explosion_trip(self):
        monitor = HealthMonitor(HealthPolicy(param_limit=100.0))
        trip = monitor.check(0, 0.1, [_fake_param(data=[float("nan")])])
        assert trip.reason == "param-nonfinite"
        trip = monitor.check(1, 0.1, [_fake_param(data=[101.0])])
        assert trip.reason == "param-explosion"
        assert monitor.check(2, 0.1, [_fake_param(data=[99.0])]) is None

    def test_guards_can_be_disabled(self):
        policy = HealthPolicy(check_grads=False, check_params=False,
                              loss_spike_factor=None)
        monitor = HealthMonitor(policy)
        bad = _fake_param(data=[float("nan")], grad=[float("nan")])
        assert monitor.check(0, 0.1, [bad]) is None     # only loss guarded
        assert monitor.check(1, float("inf"), [bad]).reason == "loss-nonfinite"

    def test_check_due_gating(self):
        monitor = HealthMonitor(HealthPolicy(check_every=4))
        assert [i for i in range(1, 13) if monitor.check_due(i)] == [4, 8, 12]

    def test_progress_past_trip_resets_rollback_budget(self):
        monitor = HealthMonitor(HealthPolicy(max_rollbacks=2))
        monitor.check(10, float("nan"), [])
        monitor.last_trip_iteration = 10
        monitor.rollback_attempts = 2
        assert not monitor.budget_exhausted()
        monitor.check(10, 0.1, [])          # replay of the trip iteration
        assert monitor.rollback_attempts == 2   # not past the trip yet
        monitor.check(11, 0.1, [])          # forward progress
        assert monitor.rollback_attempts == 0
        monitor.rollback_attempts = 3
        assert monitor.budget_exhausted()

    def test_state_dict_roundtrip(self):
        monitor = HealthMonitor(HealthPolicy())
        for i in range(4):
            monitor.check(i, float(i + 1), [])
        monitor.check(4, float("nan"), [])
        monitor.rollbacks = 2
        monitor.lr_backoffs = 1
        monitor.batch_skips = 3
        monitor.last_trip_iteration = 4
        clone = HealthMonitor(HealthPolicy())
        clone.load_state_dict(monitor.state_dict())
        assert clone.state_dict() == monitor.state_dict()


# ---------------------------------------------------------------------------
# Snapshot ring
# ---------------------------------------------------------------------------

class TestSnapshotRing:
    def test_capacity_evicts_oldest(self):
        ring = SnapshotRing(2)
        for i in range(4):
            ring.push(i, {"x": np.full(2, float(i))})
        assert ring.iterations() == [2, 3]
        assert len(ring) == 2
        assert ring.newest()["iteration"] == 3

    def test_push_copies_the_state(self):
        ring = SnapshotRing(1)
        live = {"w": np.zeros(3), "nested": [np.ones(2)]}
        ring.push(0, live)
        live["w"][:] = 99.0
        live["nested"][0][:] = 99.0
        restored = ring.restore_newest()
        np.testing.assert_array_equal(restored["state"]["w"], np.zeros(3))
        np.testing.assert_array_equal(restored["state"]["nested"][0],
                                      np.ones(2))

    def test_restore_copies_again(self):
        # Mutating a restored state must not poison the ring's copy.
        ring = SnapshotRing(1)
        ring.push(5, {"w": np.zeros(3)})
        first = ring.restore_newest()
        first["state"]["w"][:] = float("nan")
        second = ring.restore_newest()
        np.testing.assert_array_equal(second["state"]["w"], np.zeros(3))

    def test_empty_ring(self):
        ring = SnapshotRing(2)
        assert ring.newest() is None and ring.restore_newest() is None
        assert ring.iterations() == [] and len(ring) == 0

    def test_copy_state_tree_handles_scalars_and_tuples(self):
        tree = {"a": (np.arange(3), 2.5), "b": [1, "s"], "c": None}
        copy = copy_state_tree(tree)
        tree["a"][0][:] = 0
        np.testing.assert_array_equal(copy["a"][0], np.arange(3))
        assert copy["a"][1] == 2.5 and copy["b"] == [1, "s"]
        assert copy["c"] is None


# ---------------------------------------------------------------------------
# Fault-injection surface (satellite: site registry + array corruption)
# ---------------------------------------------------------------------------

class TestFaultSites:
    def test_unknown_site_rejected(self):
        injector = FaultInjector(seed=FAULT_SEED)
        with pytest.raises(ValueError, match="unknown fault site"):
            injector.add("no.such.site", "raise-transient")

    def test_training_sites_are_registered(self):
        sites = fault_sites()
        assert "train.backward" in sites and "optimizer.step" in sites
        assert all(isinstance(desc, str) for desc in sites.values())

    def test_sites_listing_reports_armed_counts(self):
        injector = FaultInjector(seed=FAULT_SEED)
        injector.add("train.backward", "corrupt-grad", times=1)
        injector.add("train.backward", "corrupt-grad", after=5)
        listing = injector.sites()
        assert listing["train.backward"] == 2
        assert listing["checkpoint.save"] == 0      # registered, unarmed
        assert set(fault_sites()) <= set(listing)

    def test_register_fault_site_extends_registry(self):
        register_fault_site("test.custom-site", "a site registered by a test")
        assert "test.custom-site" in fault_sites()
        injector = FaultInjector(seed=FAULT_SEED)
        injector.add("test.custom-site", "raise-transient", times=1)

    @pytest.mark.nonfinite
    def test_corrupt_array_is_seeded_and_in_place(self):
        def poisoned_positions():
            injector = FaultInjector(seed=FAULT_SEED)
            injector.add("train.backward", "corrupt-grad", times=1)
            arrays = [np.zeros(16), np.zeros((4, 4))[::2]]   # non-contiguous
            with fault_injection(injector):
                from repro.reliability import fault_point
                fault_point("train.backward", arrays=arrays)
            return [tuple(np.argwhere(~np.isfinite(a))[0]) for a in arrays]

        first = poisoned_positions()
        second = poisoned_positions()
        assert first == second          # same seed => same poisoned element
        assert len(first) == 2          # every array in the batch is hit


# ---------------------------------------------------------------------------
# No-trip bit-identity differentials
# ---------------------------------------------------------------------------

class TestNoTripBitIdentity:
    @pytest.mark.parametrize("culled", [False, True],
                             ids=["dense", "culled"])
    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_guarded_run_matches_unguarded(self, tiny_config, health_dataset,
                                           culled, dtype):
        base = dataclasses.replace(
            tiny_config, compute_dtype=dtype, culling_enabled=culled,
            occupancy_warmup_iterations=4, occupancy_update_every=2)
        guarded_config = dataclasses.replace(base, health=FAST_POLICY)

        plain = _trainer(base, health_dataset)
        plain_history = TrainingHistory()
        plain.run_steps(20, plain_history)

        guarded = _trainer(guarded_config, health_dataset)
        guarded_history = TrainingHistory()
        guarded.run_steps(20, guarded_history)

        assert guarded.health.guard_trips == 0
        assert guarded_history.guard_trips == 0
        assert list(guarded_history.losses) == list(plain_history.losses)
        for theirs, ours in zip(_params(plain), _params(guarded)):
            np.testing.assert_array_equal(theirs, ours)


# ---------------------------------------------------------------------------
# Deterministic rollback recovery
# ---------------------------------------------------------------------------

def _recovered_run(config, dataset, n_steps=20, fault_after=10, times=1,
                   site="train.backward", kind="corrupt-grad"):
    trainer = _trainer(config, dataset)
    history = TrainingHistory()
    injector = FaultInjector(seed=FAULT_SEED)
    injector.add(site, kind, after=fault_after, times=times)
    with fault_injection(injector):
        trainer.run_steps(n_steps, history)
    return trainer, history


@pytest.mark.nonfinite
class TestDeterministicRecovery:
    @pytest.fixture(scope="class")
    def health_config(self, tiny_config):
        return dataclasses.replace(tiny_config, health=FAST_POLICY)

    def test_guards_off_fault_poisons_params(self, tiny_config,
                                             health_dataset):
        trainer, _ = _recovered_run(tiny_config, health_dataset)
        assert not all(np.isfinite(p).all() for p in _params(trainer))

    @pytest.mark.parametrize("site,kind", [
        ("train.backward", "corrupt-grad"),
        ("optimizer.step", "corrupt-param"),
    ])
    def test_guards_on_recovers_to_finite_state(self, health_config,
                                                health_dataset, site, kind):
        trainer, history = _recovered_run(health_config, health_dataset,
                                          site=site, kind=kind)
        assert trainer.iteration == 20
        assert len(history.losses) == 20
        assert all(np.isfinite(p).all() for p in _params(trainer))
        assert all(math.isfinite(v) for v in history.losses)
        assert trainer.health.guard_trips == 1
        assert trainer.health.rollbacks == 1
        assert trainer.health.lr_backoffs == 1
        assert trainer.health.batch_skips == 1
        assert history.guard_trips == 1 and history.rollbacks == 1

    def test_recovery_is_replayable(self, health_config, health_dataset):
        first_trainer, first_history = _recovered_run(health_config,
                                                      health_dataset)
        second_trainer, second_history = _recovered_run(health_config,
                                                        health_dataset)
        assert list(first_history.losses) == list(second_history.losses)
        assert first_trainer.health.counters() == \
            second_trainer.health.counters()
        assert [t.reason for t in first_trainer.health.trips] == \
            [t.reason for t in second_trainer.health.trips]
        for theirs, ours in zip(_params(first_trainer),
                                _params(second_trainer)):
            np.testing.assert_array_equal(theirs, ours)

    def test_lr_backoff_survives_rollback(self, health_config,
                                          health_dataset):
        base_lr = health_config.learning_rate
        trainer, _ = _recovered_run(health_config, health_dataset)
        # Snapshot restore must NOT undo the remediation: lr stays backed off.
        backoff = health_config.health.lr_backoff
        assert trainer.density_optimizer.lr == pytest.approx(base_lr * backoff)
        assert trainer.color_optimizer.lr == pytest.approx(base_lr * backoff)

    def test_persistent_fault_exhausts_budget(self, tiny_config,
                                              health_dataset):
        config = dataclasses.replace(
            tiny_config,
            health=HealthPolicy(snapshot_every=5, max_rollbacks=2))
        trainer = _trainer(config, health_dataset)
        history = TrainingHistory()
        injector = FaultInjector(seed=FAULT_SEED)
        injector.add("train.backward", "corrupt-grad", after=10)  # every step
        with fault_injection(injector):
            with pytest.raises(NumericalFault, match="budget exhausted"):
                trainer.run_steps(20, history)
        # The failed trainer was rolled back before raising: its state is
        # finite, so a post-mortem flush of the scene still checkpoints.
        assert all(np.isfinite(p).all() for p in _params(trainer))
        assert trainer.health.guard_trips == 3      # initial + 2 replays
        assert history.guard_trips == 3             # synced in the finally

    def test_counters_flow_into_training_result(self, health_config,
                                                health_dataset):
        trainer, history = _recovered_run(health_config, health_dataset)
        result = trainer.finalize(history, eval_views=1, eval_samples=16)
        assert result.guard_trips == 1
        assert result.rollbacks == 1
        assert result.lr_backoffs == 1
        assert result.batch_skips == 1


# ---------------------------------------------------------------------------
# Checkpoint integration
# ---------------------------------------------------------------------------

@pytest.mark.nonfinite
class TestCheckpointIntegration:
    def test_save_refuses_non_finite_arrays(self, tmp_path):
        payload = {"model": {"w": np.array([1.0, float("nan")])}}
        with pytest.raises(NonFiniteCheckpointError, match="model.w"):
            save_checkpoint(tmp_path / "bad.ckpt.npz", payload, kind="t")

    def test_save_override_for_post_mortem(self, tmp_path):
        payload = {"w": np.array([float("inf")])}
        save_checkpoint(tmp_path / "dump.ckpt.npz", payload, kind="t",
                        allow_non_finite=True)

    def test_health_state_roundtrips_through_checkpoint(self, tiny_config,
                                                        health_dataset,
                                                        tmp_path):
        config = dataclasses.replace(tiny_config, health=FAST_POLICY)
        trainer, history = _recovered_run(config, health_dataset)
        path = tmp_path / "healthy.ckpt.npz"
        save_trainer_checkpoint(path, trainer, history=history)

        clone = _trainer(config, health_dataset, seed=1)
        clone_history = TrainingHistory()
        load_trainer_checkpoint(path, clone, history=clone_history)
        assert clone.health.state_dict() == trainer.health.state_dict()
        assert clone.density_optimizer.lr == trainer.density_optimizer.lr
        assert clone.color_optimizer.lr == trainer.color_optimizer.lr
        assert clone_history.guard_trips == history.guard_trips

    def test_health_checkpoint_needs_health_trainer(self, tiny_config,
                                                    health_dataset,
                                                    tmp_path):
        config = dataclasses.replace(tiny_config, health=FAST_POLICY)
        trainer = _trainer(config, health_dataset)
        history = TrainingHistory()
        trainer.run_steps(4, history)
        path = tmp_path / "guarded.ckpt.npz"
        save_trainer_checkpoint(path, trainer, history=history)

        plain = _trainer(tiny_config, health_dataset)
        with pytest.raises(CheckpointError, match="no HealthPolicy"):
            load_trainer_checkpoint(path, plain)


# ---------------------------------------------------------------------------
# Service quarantine
# ---------------------------------------------------------------------------

@pytest.mark.nonfinite
class TestServiceQuarantine:
    def test_numerical_fault_poisons_only_that_scene(self, tiny_config):
        datasets = [_make_dataset("lego"), _make_dataset("chair")]
        config = dataclasses.replace(
            tiny_config,
            health=HealthPolicy(snapshot_every=2, max_rollbacks=1))
        injector = FaultInjector(seed=FAULT_SEED)
        # Fires on the first corrupted step and again on its single replay
        # (max_rollbacks=1), exhausting the budget; the later healthy
        # tenant's job sees an exhausted spec.
        injector.add("train.backward", "corrupt-grad", after=2, times=2)
        with fault_injection(injector):
            with SceneService(datasets, config, seed=0,
                              n_workers=1) as service:
                handle = service.train("lego", n_steps=8)
                with pytest.raises(JobPoisoned) as err:
                    handle.result(60)
                assert isinstance(err.value.__cause__, NumericalFault)
                stats = service.stats()
                assert stats["poisoned"] == 1
                assert stats["poisoned_scenes"] == 1
                assert stats["guard_trips"] >= 1
                # Quarantine: further jobs for the scene are shed at submit.
                with pytest.raises(JobPoisoned, match="quarantined"):
                    service.train("lego", n_steps=1)
                # The fleet survives; other tenants keep training.
                result = service.train("chair", n_steps=2).result(60)
                assert result.iteration == 2
